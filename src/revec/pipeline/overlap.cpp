#include "revec/pipeline/overlap.hpp"

#include <algorithm>
#include <map>

#include "revec/ir/analysis.hpp"
#include "revec/support/assert.hpp"

namespace revec::pipeline {

int IterationSequence::config_changes() const {
    int changes = 0;
    std::string current;
    for (const InstructionSlot& slot : slots) {
        if (slot.vector_config.empty()) continue;
        if (!current.empty() && current != slot.vector_config) ++changes;
        current = slot.vector_config;
    }
    return changes;
}

IterationSequence sequence_from_schedule(const arch::ArchSpec& spec, const ir::Graph& g,
                                         const std::vector<int>& op_start) {
    REVEC_EXPECTS(op_start.size() == static_cast<std::size_t>(g.num_nodes()));
    std::map<int, InstructionSlot> by_cycle;
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op()) continue;
        InstructionSlot& slot = by_cycle[op_start[static_cast<std::size_t>(node.id)]];
        slot.ops.push_back(node.id);
        if (ir::node_timing(spec, node).lanes > 0) {
            const std::string key = ir::config_key(node);
            REVEC_ASSERT(slot.vector_config.empty() || slot.vector_config == key);
            slot.vector_config = key;
        }
    }
    IterationSequence seq;
    seq.slots.reserve(by_cycle.size());
    for (auto& [cycle, slot] : by_cycle) seq.slots.push_back(std::move(slot));
    return seq;
}

OverlapResult overlapped_execution(const arch::ArchSpec& spec, const ir::Graph& g,
                                   const IterationSequence& seq, int iterations) {
    REVEC_EXPECTS(iterations >= 1);
    const int K = seq.num_instructions();
    REVEC_EXPECTS(K > 0);

    // Which instruction position issues each op.
    std::vector<int> position(static_cast<std::size_t>(g.num_nodes()), -1);
    for (int k = 0; k < K; ++k) {
        for (const int op : seq.slots[static_cast<std::size_t>(k)].ops) {
            position[static_cast<std::size_t>(op)] = k;
        }
    }
    for (const ir::Node& node : g.nodes()) {
        if (node.is_op()) {
            REVEC_EXPECTS(position[static_cast<std::size_t>(node.id)] >= 0);
        }
    }

    OverlapResult result;
    result.iterations = iterations;

    // Base cycle of each block: M issue cycles per block, plus the
    // reconfiguration penalty where the configuration changes.
    std::vector<int> base(static_cast<std::size_t>(K), 0);
    int reconfigs = 0;
    std::string current_config;
    {
        int cycle = 0;
        for (int k = 0; k < K; ++k) {
            const std::string& cfg = seq.slots[static_cast<std::size_t>(k)].vector_config;
            if (!cfg.empty() && cfg != current_config) {
                ++reconfigs;  // includes the initial configuration load
                if (!current_config.empty()) cycle += spec.reconfig_cycles;
                current_config = cfg;
            }
            base[static_cast<std::size_t>(k)] = cycle;
            cycle += iterations;
        }
    }

    // Dependence check: a producer at block k1 and consumer at block k2 in
    // the same iteration are spaced base[k2] - base[k1] cycles apart; that
    // must cover the producer's latency. Insert stalls where it does not
    // (only possible when M is smaller than the pipeline depth).
    bool changed = true;
    while (changed) {
        changed = false;
        for (const ir::Node& node : g.nodes()) {
            if (!node.is_op()) continue;
            const int k1 = position[static_cast<std::size_t>(node.id)];
            const int latency = ir::node_timing(spec, node).latency;
            for (const int d : g.succs(node.id)) {
                for (const int consumer : g.succs(d)) {
                    const int k2 = position[static_cast<std::size_t>(consumer)];
                    REVEC_ASSERT(k2 > k1);
                    const int gap = base[static_cast<std::size_t>(k2)] -
                                    base[static_cast<std::size_t>(k1)];
                    if (gap < latency) {
                        const int need = latency - gap;
                        for (int k = k2; k < K; ++k) {
                            base[static_cast<std::size_t>(k)] += need;
                        }
                        result.stalls_inserted += need;
                        changed = true;
                    }
                }
            }
        }
    }

    // Total length: the last completion over all iterations.
    int length = 0;
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op()) continue;
        const int k = position[static_cast<std::size_t>(node.id)];
        const int latency = ir::node_timing(spec, node).latency;
        length = std::max(length,
                          base[static_cast<std::size_t>(k)] + (iterations - 1) + latency);
    }

    result.schedule_length = length;
    result.reconfigurations = reconfigs;
    result.reconfigs_per_iteration =
        static_cast<double>(reconfigs) / static_cast<double>(iterations);
    result.throughput = static_cast<double>(iterations) / static_cast<double>(length);
    result.block_base = std::move(base);
    return result;
}

}  // namespace revec::pipeline
