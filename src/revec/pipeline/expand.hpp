// Multi-iteration expansion: unroll an overlapped-execution or
// modulo-scheduled kernel into a flat M-iteration program (replicated
// graph + flat schedule), so the single-schedule verifier and the
// machine-level simulator can check the pipelined execution end to end.
// This mechanizes the paper's §4.3 note that, given enough memory,
// "memory allocation boils down to repeating the allocation of the
// original schedule for each iteration, with a certain offset".
#pragma once

#include "revec/pipeline/modulo.hpp"
#include "revec/pipeline/overlap.hpp"
#include "revec/sched/schedule.hpp"

namespace revec::pipeline {

/// A flat multi-iteration program.
struct ExpandedProgram {
    ir::Graph graph;          ///< M independent copies of the kernel
    sched::Schedule schedule; ///< flat starts (+ slots when allocated)
    int iterations = 0;
    /// node id of iteration m's copy of original node v.
    int node_of(int iteration, int original) const {
        return iteration * stride_nodes + original;
    }
    int stride_nodes = 0;
};

/// Replicate the kernel M times. Each copy's input values are scaled by
/// (1 + iteration * 0.125) so a simulation failure cannot hide behind
/// identical per-iteration values.
ir::Graph replicate_graph(const ir::Graph& g, int iterations);

/// Unroll a single-iteration schedule M times with iteration m issued at
/// time offset m*delta and (when the schedule carries an allocation and
/// slot_stride >= 0) iteration m's data placed at slot + m*slot_stride.
/// Pass slot_stride < 0 to drop the allocation (scheduling-only check).
/// Throws revec::Error when the strided slots exceed the memory.
ExpandedProgram expand_uniform(const arch::ArchSpec& spec, const ir::Graph& g,
                               const sched::Schedule& single, int iterations, int delta,
                               int slot_stride);

/// Unroll an overlapped execution: iteration m's copy of the op at
/// instruction position k issues at block_base[k] + m (§4.3's two-phase
/// scheme). No memory allocation (the manual method does not produce one).
ExpandedProgram expand_overlap(const arch::ArchSpec& spec, const ir::Graph& g,
                               const IterationSequence& seq, const OverlapResult& overlap);

/// Unroll a modulo schedule: iteration m's copy of op i issues at
/// stage_i * II + residue_i + m * II. Steady-state resource feasibility in
/// every residue class implies the flat unrolling is conflict-free; the
/// expansion lets the verifier confirm it. No memory allocation.
ExpandedProgram expand_modulo(const arch::ArchSpec& spec, const ir::Graph& g,
                              const ModuloResult& modulo, int iterations);

}  // namespace revec::pipeline
