#include "revec/pipeline/manual.hpp"

#include <algorithm>
#include <map>

#include "revec/ir/analysis.hpp"
#include "revec/support/assert.hpp"

namespace revec::pipeline {

IterationSequence pack_min_instructions(const arch::ArchSpec& spec, const ir::Graph& g) {
    const int n = g.num_nodes();

    // Remaining unscheduled predecessors per op (through data nodes).
    std::vector<int> waiting(static_cast<std::size_t>(n), 0);
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op()) continue;
        for (const int d : g.preds(node.id)) {
            if (!g.preds(d).empty()) ++waiting[static_cast<std::size_t>(node.id)];
        }
    }

    std::vector<char> done(static_cast<std::size_t>(n), 0);
    int remaining = static_cast<int>(g.op_nodes().size());

    IterationSequence seq;
    std::string current_config;

    while (remaining > 0) {
        // Ready vector ops grouped by configuration; ready scalar / ix ops.
        std::map<std::string, std::vector<int>> vector_ready;
        std::vector<int> scalar_ready;
        std::vector<int> ix_ready;
        for (const ir::Node& node : g.nodes()) {
            if (!node.is_op() || done[static_cast<std::size_t>(node.id)] ||
                waiting[static_cast<std::size_t>(node.id)] > 0) {
                continue;
            }
            const ir::NodeTiming t = ir::node_timing(spec, node);
            if (t.lanes > 0) {
                vector_ready[ir::config_key(node)].push_back(node.id);
            } else if (node.cat == ir::NodeCat::ScalarOp) {
                scalar_ready.push_back(node.id);
            } else {
                ix_ready.push_back(node.id);
            }
        }

        InstructionSlot slot;

        // Pick the vector configuration: stick with the loaded one while it
        // has ready work (minimizes reconfigurations), otherwise switch to
        // the configuration with the most ready operations (minimizes
        // instruction count).
        std::string chosen;
        if (vector_ready.contains(current_config)) {
            chosen = current_config;
        } else {
            std::size_t best = 0;
            for (const auto& [cfg, ops] : vector_ready) {
                if (ops.size() > best) {
                    best = ops.size();
                    chosen = cfg;
                }
            }
        }
        if (!chosen.empty()) {
            int lanes_free = spec.vector_lanes;
            for (const int op : vector_ready[chosen]) {
                const int lanes = ir::node_timing(spec, g.node(op)).lanes;
                if (lanes > lanes_free) continue;
                lanes_free -= lanes;
                slot.ops.push_back(op);
            }
            slot.vector_config = chosen;
            current_config = chosen;
        }
        for (int i = 0; i < spec.scalar_units && i < static_cast<int>(scalar_ready.size()); ++i) {
            slot.ops.push_back(scalar_ready[static_cast<std::size_t>(i)]);
        }
        for (int i = 0; i < spec.index_merge_units && i < static_cast<int>(ix_ready.size());
             ++i) {
            slot.ops.push_back(ix_ready[static_cast<std::size_t>(i)]);
        }

        REVEC_ASSERT(!slot.ops.empty());  // a DAG always has ready work
        for (const int op : slot.ops) {
            done[static_cast<std::size_t>(op)] = 1;
            --remaining;
            for (const int d : g.succs(op)) {
                for (const int consumer : g.succs(d)) {
                    --waiting[static_cast<std::size_t>(consumer)];
                }
            }
        }
        seq.slots.push_back(std::move(slot));
    }
    return seq;
}

}  // namespace revec::pipeline
