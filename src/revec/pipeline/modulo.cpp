#include "revec/pipeline/modulo.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "revec/cp/count.hpp"
#include "revec/cp/cumulative.hpp"
#include "revec/cp/linear.hpp"
#include "revec/cp/reified.hpp"
#include "revec/heur/ims.hpp"
#include "revec/ir/analysis.hpp"
#include "revec/sched/schedule.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/stopwatch.hpp"

namespace revec::pipeline {

namespace {

using cp::IntVar;

/// Vector-core ops and their configuration ids (dense ints).
struct VectorConfigIndex {
    std::vector<int> ops;                 // vector-core op node ids
    std::vector<int> config_of_op;        // parallel: dense config id
    std::vector<std::string> config_key;  // dense id -> key
};

VectorConfigIndex index_vector_configs(const arch::ArchSpec& spec, const ir::Graph& g) {
    VectorConfigIndex idx;
    std::map<std::string, int> ids;
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op() || ir::node_timing(spec, node).lanes == 0) continue;
        const std::string key = ir::config_key(node);
        const auto [it, inserted] = ids.emplace(key, static_cast<int>(ids.size()));
        if (inserted) idx.config_key.push_back(key);
        idx.ops.push_back(node.id);
        idx.config_of_op.push_back(it->second);
    }
    return idx;
}

}  // namespace

int ii_lower_bound(const arch::ArchSpec& spec, const ir::Graph& g) {
    // Each residue cycle hosts a single vector configuration with at most
    // vector_lanes lanes, one scalar issue per scalar unit, and one
    // index/merge issue per unit.
    std::map<std::string, int> lane_demand;
    int scalar_ops = 0;
    int ix_ops = 0;
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op()) continue;
        const ir::NodeTiming t = ir::node_timing(spec, node);
        if (t.lanes > 0) {
            lane_demand[ir::config_key(node)] += t.lanes;
        } else if (node.cat == ir::NodeCat::ScalarOp) {
            ++scalar_ops;
        } else {
            ++ix_ops;
        }
    }
    int vec_bound = 0;
    for (const auto& [key, demand] : lane_demand) {
        vec_bound += (demand + spec.vector_lanes - 1) / spec.vector_lanes;
    }
    const int scalar_bound = (scalar_ops + spec.scalar_units - 1) / spec.scalar_units;
    const int ix_bound = (ix_ops + spec.index_merge_units - 1) / spec.index_merge_units;
    return std::max({1, vec_bound, scalar_bound, ix_bound});
}

int count_kernel_reconfigs(const arch::ArchSpec& spec, const ir::Graph& g,
                           const std::vector<int>& residue, int ii) {
    REVEC_EXPECTS(ii > 0);
    // Occupied vector residues, in cyclic order, with their configuration.
    std::map<int, std::string> config_at;
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op() || ir::node_timing(spec, node).lanes == 0) continue;
        const int m = residue[static_cast<std::size_t>(node.id)];
        REVEC_EXPECTS(m >= 0 && m < ii);
        const std::string key = ir::config_key(node);
        const auto [it, inserted] = config_at.emplace(m, key);
        REVEC_EXPECTS(inserted || it->second == key);
    }
    if (config_at.size() <= 1) return 0;
    // Walk the occupied residues cyclically; nops hold the configuration.
    int changes = 0;
    std::string prev = config_at.rbegin()->second;  // wrap-around predecessor
    for (const auto& [m, key] : config_at) {
        if (key != prev) ++changes;
        prev = key;
    }
    return changes;
}

namespace {

/// Variable handles and phases of one build of the modulo model for a
/// candidate II. Deterministic builds mean any build's handles index the
/// solution of a solve over any other build (the portfolio re-posts the
/// model per worker).
struct ModuloModel {
    std::vector<IntVar> residue;  // parallel to all nodes (invalid for data)
    std::vector<IntVar> stage;
    IntVar reconfig_count;  // valid only when minimizing reconfigs
    std::vector<cp::Phase> phases;
    bool infeasible = false;  // budget contradiction found while building
};

/// Post the §4.3 modulo model into a fresh store (the re-posting hook).
ModuloModel build_modulo_model(cp::Store& store, const arch::ArchSpec& spec,
                               const ir::Graph& g, int ii, int horizon,
                               bool minimize_reconfigs, int reconfig_budget) {
    const int n = g.num_nodes();
    const std::vector<int> asap = ir::asap_times(spec, g);

    std::vector<IntVar> start(static_cast<std::size_t>(n));
    std::vector<IntVar> residue(static_cast<std::size_t>(n));
    std::vector<IntVar> stage(static_cast<std::size_t>(n));
    const int max_stage = horizon / ii + 1;

    for (const ir::Node& node : g.nodes()) {
        const auto i = static_cast<std::size_t>(node.id);
        start[i] = store.new_var(asap[i], horizon, "s" + std::to_string(node.id));
        if (!node.is_op()) continue;
        residue[i] = store.new_var(0, ii - 1, "m" + std::to_string(node.id));
        stage[i] = store.new_var(0, max_stage, "k" + std::to_string(node.id));
        // s = II * k + m
        cp::post_linear_eq(store, {{1, start[i]}, {-ii, stage[i]}, {-1, residue[i]}}, 0);
    }

    // Inputs at 0; data nodes follow eq. 4; precedence otherwise.
    for (const int d : g.input_nodes()) store.assign(start[static_cast<std::size_t>(d)], 0);
    for (const ir::Node& node : g.nodes()) {
        const ir::NodeTiming t = ir::node_timing(spec, node);
        const auto i = static_cast<std::size_t>(node.id);
        for (const int succ : g.succs(node.id)) {
            const auto j = static_cast<std::size_t>(succ);
            if (g.node(succ).is_data()) {
                cp::post_eq_offset(store, start[i], t.latency, start[j]);
            } else {
                cp::post_leq_offset(store, start[i], t.latency, start[j]);
            }
        }
    }

    // Kernel resource constraints on the residues.
    const VectorConfigIndex cfg = index_vector_configs(spec, g);
    std::vector<cp::CumulTask> lane_tasks;
    std::vector<cp::CumulTask> scalar_tasks;
    std::vector<cp::CumulTask> ix_tasks;
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op()) continue;
        const ir::NodeTiming t = ir::node_timing(spec, node);
        const auto i = static_cast<std::size_t>(node.id);
        if (t.lanes > 0) {
            lane_tasks.push_back({residue[i], t.duration, t.lanes});
        } else if (node.cat == ir::NodeCat::ScalarOp) {
            scalar_tasks.push_back({residue[i], t.duration, 1});
        } else {
            ix_tasks.push_back({residue[i], t.duration, 1});
        }
    }
    if (!lane_tasks.empty()) cp::post_cumulative(store, lane_tasks, spec.vector_lanes);
    if (!scalar_tasks.empty()) cp::post_cumulative(store, scalar_tasks, spec.scalar_units);
    if (!ix_tasks.empty()) cp::post_cumulative(store, ix_tasks, spec.index_merge_units);

    // One configuration per residue (eq. 3 in modulo form).
    for (std::size_t a = 0; a < cfg.ops.size(); ++a) {
        for (std::size_t b = a + 1; b < cfg.ops.size(); ++b) {
            if (cfg.config_of_op[a] == cfg.config_of_op[b]) continue;
            cp::post_not_equal(store, residue[static_cast<std::size_t>(cfg.ops[a])],
                               residue[static_cast<std::size_t>(cfg.ops[b])]);
        }
    }

    IntVar reconfig_count;
    std::vector<IntVar> type_vars;
    if (minimize_reconfigs && !cfg.ops.empty()) {
        const int num_configs = static_cast<int>(cfg.config_key.size());
        // Per-residue configuration variable. Unoccupied residues take any
        // value; letting them interpolate matches the semantics that nop
        // cycles keep the previous configuration loaded.
        for (int t = 0; t < ii; ++t) {
            type_vars.push_back(store.new_var(0, num_configs - 1, "cfg" + std::to_string(t)));
        }
        // Channel: op i at residue t forces type_vars[t] = config(i).
        for (std::size_t a = 0; a < cfg.ops.size(); ++a) {
            const auto i = static_cast<std::size_t>(cfg.ops[a]);
            for (int t = 0; t < ii; ++t) {
                const cp::BoolVar here = store.new_bool();
                cp::post_reified_eq_const(store, here, residue[i], t);
                const cp::BoolVar is_cfg = store.new_bool();
                cp::post_reified_eq_const(store, is_cfg, type_vars[static_cast<std::size_t>(t)],
                                          cfg.config_of_op[a]);
                cp::post_implies(store, here, is_cfg);
            }
        }
        // R = number of cyclic adjacent changes.
        std::vector<cp::BoolVar> same;
        for (int t = 0; t < ii; ++t) {
            const cp::BoolVar b = store.new_bool();
            cp::post_reified_eq(store, b, type_vars[static_cast<std::size_t>(t)],
                                type_vars[static_cast<std::size_t>((t + 1) % ii)]);
            same.push_back(b);
        }
        const IntVar same_count = store.new_var(0, ii, "same_count");
        cp::post_bool_sum(store, same, same_count);
        // Redundant lower bound: every configuration forms at least one
        // maximal block around the kernel, so with >= 2 configurations the
        // cyclic change count is at least the number of configurations.
        const int r_lower = num_configs >= 2 ? num_configs : 0;
        const int r_upper = std::min(ii, reconfig_budget);
        if (r_upper < r_lower) {
            ModuloModel out;
            out.residue = std::move(residue);
            out.stage = std::move(stage);
            out.infeasible = true;
            return out;
        }
        reconfig_count = store.new_var(r_lower, r_upper, "reconfigs");
        cp::post_linear_eq(store, {{1, reconfig_count}, {1, same_count}}, ii);
    }

    // Phases: residues first (they define the kernel), then stages, then
    // configuration variables. When minimizing reconfigurations, branch the
    // residues grouped by configuration in input order: with min-value
    // selection, same-configuration operations pack into adjacent residues,
    // so the first incumbents already have few configuration changes.
    std::vector<int> op_order;
    for (const ir::Node& node : g.nodes()) {
        if (node.is_op()) op_order.push_back(node.id);
    }
    if (minimize_reconfigs) {
        // Vector-core groups first (they drive R), scalar / index-merge ops
        // last (any residue works for them via the stage variable).
        std::stable_sort(op_order.begin(), op_order.end(), [&](int a, int b) {
            const auto key = [&](int id) {
                const ir::Node& node = g.node(id);
                return ir::node_timing(spec, node).lanes > 0 ? ir::config_key(node)
                                                             : std::string("~");
            };
            return key(a) < key(b);
        });
    }
    std::vector<IntVar> residue_list;
    std::vector<IntVar> stage_list;
    for (const int id : op_order) {
        residue_list.push_back(residue[static_cast<std::size_t>(id)]);
        stage_list.push_back(stage[static_cast<std::size_t>(id)]);
    }
    std::vector<cp::Phase> phases;
    phases.push_back({residue_list,
                      minimize_reconfigs ? cp::VarSelect::InputOrder : cp::VarSelect::SmallestMin,
                      cp::ValSelect::Min, "residues"});
    phases.push_back({stage_list, cp::VarSelect::SmallestMin, cp::ValSelect::Min, "stages"});
    if (!type_vars.empty()) {
        phases.push_back({type_vars, cp::VarSelect::InputOrder, cp::ValSelect::Min, "configs"});
    }

    ModuloModel out;
    out.residue = std::move(residue);
    out.stage = std::move(stage);
    out.reconfig_count = reconfig_count;
    out.phases = std::move(phases);
    return out;
}

/// One decision-problem solve for a candidate II. When `minimize_reconfigs`
/// the model contains per-residue configuration variables and minimizes the
/// cyclic change count R; otherwise it is a pure feasibility problem.
struct IiAttempt {
    cp::SolveResult result;
    std::vector<IntVar> residue_vars;  // parallel to all nodes (invalid for data)
    std::vector<IntVar> stage_vars;
    IntVar reconfig_count;  // valid only when minimizing reconfigs
};

IiAttempt try_ii(const arch::ArchSpec& spec, const ir::Graph& g, int ii, int horizon,
                 bool minimize_reconfigs, int reconfig_budget, const Deadline& deadline,
                 const cp::SolverConfig& solver) {
    cp::Store store{solver.engine};
    const ModuloModel m =
        build_modulo_model(store, spec, g, ii, horizon, minimize_reconfigs, reconfig_budget);

    IiAttempt attempt;
    attempt.residue_vars = m.residue;
    attempt.stage_vars = m.stage;
    attempt.reconfig_count = m.reconfig_count;
    if (m.infeasible) {
        attempt.result.status = cp::SolveStatus::Unsat;
        return attempt;
    }

    cp::SearchOptions opts;
    opts.deadline = deadline;
    const IntVar objective =
        minimize_reconfigs && m.reconfig_count.valid() ? m.reconfig_count : IntVar();

    if (solver.threads <= 1) {
        if (objective.valid()) {
            attempt.result = cp::solve(store, m.phases, objective, opts);
        } else {
            attempt.result = cp::satisfy(store, m.phases, opts);
        }
        return attempt;
    }
    attempt.result =
        cp::solve_portfolio(
            [&](cp::Store& s) {
                ModuloModel worker = build_modulo_model(s, spec, g, ii, horizon,
                                                        minimize_reconfigs, reconfig_budget);
                const IntVar obj = minimize_reconfigs && worker.reconfig_count.valid()
                                       ? worker.reconfig_count
                                       : IntVar();
                return cp::PostedModel{std::move(worker.phases), obj};
            },
            solver, opts)
            .to_solve_result();
    return attempt;
}

}  // namespace

ModuloResult modulo_schedule(const ir::Graph& g, const ModuloOptions& options) {
    options.spec.validate();
    const arch::ArchSpec& spec = options.spec;
    const Stopwatch watch;
    const Deadline deadline = Deadline::after_ms(options.timeout_ms);

    ModuloResult best;
    best.ii_lower_bound = ii_lower_bound(spec, g);
    // Generous flat-time horizon: a kernel under a tight II can stretch a
    // single iteration well past its standalone makespan.
    const int horizon = 2 * sched::list_schedule(spec, g).makespan + 2 * spec.vector_latency;

    const auto extract = [&](const IiAttempt& attempt, int ii) {
        best.initial_ii = ii;
        best.residue.assign(static_cast<std::size_t>(g.num_nodes()), -1);
        best.stage.assign(static_cast<std::size_t>(g.num_nodes()), -1);
        for (const ir::Node& node : g.nodes()) {
            if (!node.is_op()) continue;
            const auto i = static_cast<std::size_t>(node.id);
            best.residue[i] = attempt.result.value_of(attempt.residue_vars[i]);
            best.stage[i] = attempt.result.value_of(attempt.stage_vars[i]);
        }
        best.reconfigs = count_kernel_reconfigs(spec, g, best.residue, ii);
        best.actual_ii = ii + best.reconfigs * spec.reconfig_cycles;
        best.throughput = 1.0 / best.actual_ii;
    };

    // Heuristic IMS kernel: a feasible II upper bound that cuts the exact
    // scan short and stands in as the anytime fallback on timeout.
    heur::ImsResult ims;
    if (options.warm_start || options.heuristic_only) {
        heur::ImsOptions ims_opts;
        ims_opts.min_ii = best.ii_lower_bound;
        ims_opts.max_ii = options.max_ii;
        ims = heur::iterative_modulo_schedule(spec, g, ims_opts);
    }
    const auto extract_ims = [&](cp::SolveStatus status) {
        best.initial_ii = ims.ii;
        best.residue = ims.residue;
        best.stage = ims.stage;
        best.reconfigs = count_kernel_reconfigs(spec, g, best.residue, ims.ii);
        best.actual_ii = ims.ii + best.reconfigs * spec.reconfig_cycles;
        best.throughput = 1.0 / best.actual_ii;
        best.status = status;
    };
    if (options.heuristic_only) {
        if (ims.ok) {
            // An IMS kernel at the resource lower bound is provably optimal
            // in II (reconfigurations are post-processed either way).
            extract_ims(!options.include_reconfigs && ims.ii == best.ii_lower_bound
                            ? cp::SolveStatus::Optimal
                            : cp::SolveStatus::HeuristicFallback);
        } else {
            best.status = cp::SolveStatus::Timeout;
        }
        best.time_ms = watch.elapsed_ms();
        return best;
    }

    if (!options.include_reconfigs) {
        // Smallest feasible II, reconfigurations post-processed. With an
        // IMS kernel in hand only IIs strictly below it need the exact
        // solver; exhausting them all proves the IMS kernel optimal.
        const int scan_end = ims.ok ? ims.ii - 1 : options.max_ii;
        bool timed_out = false;
        for (int ii = best.ii_lower_bound; ii <= scan_end; ++ii) {
            if (deadline.expired()) {
                timed_out = true;
                break;
            }
            const IiAttempt attempt =
                try_ii(spec, g, ii, horizon, false, 0, deadline, options.solver);
            if (attempt.result.has_solution()) {
                extract(attempt, ii);
                best.status = cp::SolveStatus::Optimal;
                break;
            }
            if (attempt.result.status == cp::SolveStatus::Timeout) {
                timed_out = true;
                break;
            }
        }
        if (best.residue.empty() && ims.ok) {
            // No exact solution below the IMS II: proven optimal when the
            // scan ran to completion, anytime fallback when it timed out.
            extract_ims(timed_out ? cp::SolveStatus::HeuristicFallback
                                  : cp::SolveStatus::Optimal);
        } else if (best.residue.empty() && timed_out) {
            best.status = cp::SolveStatus::Timeout;
        }
        best.time_ms = watch.elapsed_ms();
        return best;
    }

    // Reconfiguration-aware: minimize II + R * reconfig_cycles. The IMS
    // kernel seeds the incumbent so the budget pruning bites from the
    // first II on.
    int best_actual = INT32_MAX;
    bool best_is_ims = false;
    if (ims.ok) {
        extract_ims(cp::SolveStatus::HeuristicFallback);
        best_actual = best.actual_ii;
        best_is_ims = true;
    }
    for (int ii = best.ii_lower_bound; ii <= options.max_ii; ++ii) {
        if (ii >= best_actual) break;  // R >= 0: no larger II can win
        if (deadline.expired()) break;
        // Only R values that could improve on the incumbent are relevant.
        const int budget =
            best_actual == INT32_MAX
                ? g.num_nodes()
                : std::max(0, (best_actual - 1 - ii) / std::max(1, spec.reconfig_cycles));
        const IiAttempt attempt =
            try_ii(spec, g, ii, horizon, true, budget, deadline, options.solver);
        if (!attempt.result.has_solution()) continue;
        const int r = attempt.result.value_of(attempt.reconfig_count);
        const int actual = ii + r * spec.reconfig_cycles;
        if (actual < best_actual) {
            best_actual = actual;
            extract(attempt, ii);
            // extract() recomputes reconfigs from residues; the model's R may
            // be lower than the naive count when nop interpolation helps, so
            // trust the model's value.
            best.reconfigs = r;
            best.actual_ii = actual;
            best.throughput = 1.0 / actual;
            best.status = attempt.result.status == cp::SolveStatus::Optimal
                              ? cp::SolveStatus::Optimal
                              : cp::SolveStatus::SatTimeout;
            best_is_ims = false;
        }
    }
    if (best_actual == INT32_MAX) {
        best.status = deadline.expired() ? cp::SolveStatus::Timeout : cp::SolveStatus::Unsat;
    } else if (best_is_ims) {
        // Nothing beat the IMS kernel: a completed scan proves it optimal.
        if (!deadline.expired()) best.status = cp::SolveStatus::Optimal;
    }
    best.time_ms = watch.elapsed_ms();
    return best;
}

}  // namespace revec::pipeline
