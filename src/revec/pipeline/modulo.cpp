#include "revec/pipeline/modulo.hpp"

#include <algorithm>
#include <map>

#include "revec/heur/ims.hpp"
#include "revec/model/emit_cp.hpp"
#include "revec/model/kernel_model.hpp"
#include "revec/obs/trace.hpp"
#include "revec/sched/schedule.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/stopwatch.hpp"

namespace revec::pipeline {

namespace {

using cp::IntVar;

int ii_lower_bound_for(const model::KernelModel& m) {
    // Each residue cycle hosts a single vector configuration with at most
    // vector_lanes lanes, one scalar issue per scalar unit, and one
    // index/merge issue per unit.
    std::map<int, int> lane_demand;  // config id -> total lanes
    int scalar_ops = 0;
    int ix_ops = 0;
    for (const int op : m.ops) {
        const model::ModelNode& node = m.node(op);
        if (node.lanes > 0) {
            lane_demand[node.config] += node.lanes;
        } else if (node.unit == model::Unit::Scalar) {
            ++scalar_ops;
        } else {
            ++ix_ops;
        }
    }
    int vec_bound = 0;
    for (const auto& [config, demand] : lane_demand) {
        vec_bound += (demand + m.caps.vector_lanes - 1) / m.caps.vector_lanes;
    }
    const int scalar_bound = (scalar_ops + m.caps.scalar_units - 1) / m.caps.scalar_units;
    const int ix_bound = (ix_ops + m.caps.index_merge_units - 1) / m.caps.index_merge_units;
    return std::max({1, vec_bound, scalar_bound, ix_bound});
}

int count_kernel_reconfigs_for(const model::KernelModel& m, const std::vector<int>& residue,
                               int ii) {
    REVEC_EXPECTS(ii > 0);
    // Occupied vector residues, in cyclic order, with their configuration.
    std::map<int, int> config_at;  // residue -> config id
    for (const int op : m.vector_ops) {
        const int r = residue[static_cast<std::size_t>(op)];
        REVEC_EXPECTS(r >= 0 && r < ii);
        const auto [it, inserted] = config_at.emplace(r, m.node(op).config);
        REVEC_EXPECTS(inserted || it->second == m.node(op).config);
    }
    if (config_at.size() <= 1) return 0;
    // Walk the occupied residues cyclically; nops hold the configuration.
    int changes = 0;
    int prev = config_at.rbegin()->second;  // wrap-around predecessor
    for (const auto& [r, config] : config_at) {
        if (config != prev) ++changes;
        prev = config;
    }
    return changes;
}

/// One decision-problem solve for a candidate II. When `minimize_reconfigs`
/// the model contains per-residue configuration variables and minimizes the
/// cyclic change count R; otherwise it is a pure feasibility problem.
struct IiAttempt {
    cp::SolveResult result;
    std::vector<IntVar> residue_vars;  // parallel to all nodes (invalid for data)
    std::vector<IntVar> stage_vars;
    IntVar reconfig_count;  // valid only when minimizing reconfigs
};

IiAttempt try_ii(const arch::ArchSpec& spec, const ir::Graph& g, int ii, int horizon,
                 bool minimize_reconfigs, int reconfig_budget, const Deadline& deadline,
                 const cp::SolverConfig& solver) {
    obs::TraceBuffer* const trace =
        solver.trace != nullptr ? solver.trace->main() : nullptr;
    obs::SpanScope span(trace, obs::TraceLevel::Phase, "try_ii", "ii", ii);

    // Lower once per candidate II (the wrap is part of the model), then emit
    // into as many stores as the search needs: emission is deterministic, so
    // the reference table's handles index any worker's solution.
    model::LowerOptions lo;
    lo.horizon = horizon;
    lo.modulo = model::ModuloWrap{ii, 0, minimize_reconfigs, reconfig_budget};
    const model::KernelModel km = model::lower_ir(spec, g, lo);

    cp::Store store{solver.engine};
    const model::VarTable m = model::emit_cp(store, km);

    IiAttempt attempt;
    attempt.residue_vars = m.residue;
    attempt.stage_vars = m.stage;
    attempt.reconfig_count = m.reconfig_count;
    if (m.infeasible) {
        attempt.result.status = cp::SolveStatus::Unsat;
        return attempt;
    }

    cp::SearchOptions opts;
    opts.deadline = deadline;
    const IntVar objective =
        minimize_reconfigs && m.reconfig_count.valid() ? m.reconfig_count : IntVar();

    if (solver.threads <= 1) {
        if (solver.profile) store.enable_profiling();
        opts.trace = trace;
        if (objective.valid()) {
            attempt.result = cp::solve(store, m.phases, objective, opts);
        } else {
            attempt.result = cp::satisfy(store, m.phases, opts);
        }
        span.result("solved", attempt.result.has_solution() ? 1 : 0);
        return attempt;
    }
    attempt.result =
        cp::solve_portfolio(
            [&](cp::Store& s) {
                model::VarTable worker = model::emit_cp(s, km);
                const IntVar obj = minimize_reconfigs && worker.reconfig_count.valid()
                                       ? worker.reconfig_count
                                       : IntVar();
                return cp::PostedModel{std::move(worker.phases), obj};
            },
            solver, opts)
            .to_solve_result();
    span.result("solved", attempt.result.has_solution() ? 1 : 0);
    return attempt;
}

}  // namespace

int ii_lower_bound(const arch::ArchSpec& spec, const ir::Graph& g) {
    return ii_lower_bound_for(model::lower_ir(spec, g));
}

int count_kernel_reconfigs(const arch::ArchSpec& spec, const ir::Graph& g,
                           const std::vector<int>& residue, int ii) {
    return count_kernel_reconfigs_for(model::lower_ir(spec, g), residue, ii);
}

ModuloResult modulo_schedule(const ir::Graph& g, const ModuloOptions& options) {
    options.spec.validate();
    const arch::ArchSpec& spec = options.spec;
    const Stopwatch watch;
    const Deadline deadline = Deadline::after_ms(options.timeout_ms);

    obs::TraceBuffer* const trace =
        options.solver.trace != nullptr ? options.solver.trace->main() : nullptr;
    obs::SpanScope modulo_span(trace, obs::TraceLevel::Phase, "modulo", "nodes",
                               g.num_nodes());

    // One base lowering (no wrap) feeds the bound, the IMS warm start, and
    // the reconfiguration counting; the per-II exact models are lowered
    // inside try_ii with their wrap attached.
    const model::KernelModel base = model::lower_ir(spec, g);

    ModuloResult best;
    best.ii_lower_bound = ii_lower_bound_for(base);
    // Generous flat-time horizon: a kernel under a tight II can stretch a
    // single iteration well past its standalone makespan.
    const int horizon = 2 * sched::list_schedule(spec, g).makespan + 2 * spec.vector_latency;

    const auto extract = [&](const IiAttempt& attempt, int ii) {
        best.initial_ii = ii;
        best.residue.assign(static_cast<std::size_t>(g.num_nodes()), -1);
        best.stage.assign(static_cast<std::size_t>(g.num_nodes()), -1);
        for (const int op : base.ops) {
            const auto i = static_cast<std::size_t>(op);
            best.residue[i] = attempt.result.value_of(attempt.residue_vars[i]);
            best.stage[i] = attempt.result.value_of(attempt.stage_vars[i]);
        }
        best.reconfigs = count_kernel_reconfigs_for(base, best.residue, ii);
        best.actual_ii = ii + best.reconfigs * spec.reconfig_cycles;
        best.throughput = 1.0 / best.actual_ii;
    };

    // Heuristic IMS kernel: a feasible II upper bound that cuts the exact
    // scan short and stands in as the anytime fallback on timeout.
    heur::ImsResult ims;
    if (options.warm_start || options.heuristic_only) {
        obs::SpanScope ims_span(trace, obs::TraceLevel::Phase, "ims");
        heur::ImsOptions ims_opts;
        ims_opts.min_ii = best.ii_lower_bound;
        ims_opts.max_ii = options.max_ii;
        ims = heur::iterative_modulo_schedule(base, ims_opts);
        ims_span.result("ii", ims.ok ? ims.ii : -1);
    }
    /// Every per-II attempt bills its solver work to the scan's totals.
    const auto bill_attempt = [&](const IiAttempt& attempt) {
        best.stats.absorb(attempt.result.stats);
        best.prop_stats.absorb(attempt.result.prop_stats);
        cp::absorb_prop_profiles(best.prop_profile, attempt.result.prop_profile);
    };
    const auto extract_ims = [&](cp::SolveStatus status) {
        best.initial_ii = ims.ii;
        best.residue = ims.residue;
        best.stage = ims.stage;
        best.reconfigs = count_kernel_reconfigs_for(base, best.residue, ims.ii);
        best.actual_ii = ims.ii + best.reconfigs * spec.reconfig_cycles;
        best.throughput = 1.0 / best.actual_ii;
        best.status = status;
    };
    if (options.heuristic_only) {
        if (ims.ok) {
            // An IMS kernel at the resource lower bound is provably optimal
            // in II (reconfigurations are post-processed either way).
            extract_ims(!options.include_reconfigs && ims.ii == best.ii_lower_bound
                            ? cp::SolveStatus::Optimal
                            : cp::SolveStatus::HeuristicFallback);
        } else {
            best.status = cp::SolveStatus::Timeout;
        }
        best.time_ms = watch.elapsed_ms();
        return best;
    }

    if (!options.include_reconfigs) {
        // Smallest feasible II, reconfigurations post-processed. With an
        // IMS kernel in hand only IIs strictly below it need the exact
        // solver; exhausting them all proves the IMS kernel optimal.
        const int scan_end = ims.ok ? ims.ii - 1 : options.max_ii;
        bool timed_out = false;
        for (int ii = best.ii_lower_bound; ii <= scan_end; ++ii) {
            if (deadline.expired()) {
                timed_out = true;
                break;
            }
            const IiAttempt attempt =
                try_ii(spec, g, ii, horizon, false, 0, deadline, options.solver);
            bill_attempt(attempt);
            if (attempt.result.has_solution()) {
                extract(attempt, ii);
                best.status = cp::SolveStatus::Optimal;
                break;
            }
            if (attempt.result.status == cp::SolveStatus::Timeout) {
                timed_out = true;
                break;
            }
        }
        if (best.residue.empty() && ims.ok) {
            // No exact solution below the IMS II: proven optimal when the
            // scan ran to completion, anytime fallback when it timed out.
            extract_ims(timed_out ? cp::SolveStatus::HeuristicFallback
                                  : cp::SolveStatus::Optimal);
        } else if (best.residue.empty() && timed_out) {
            best.status = cp::SolveStatus::Timeout;
        }
        best.time_ms = watch.elapsed_ms();
        return best;
    }

    // Reconfiguration-aware: minimize II + R * reconfig_cycles. The IMS
    // kernel seeds the incumbent so the budget pruning bites from the
    // first II on.
    int best_actual = INT32_MAX;
    bool best_is_ims = false;
    if (ims.ok) {
        extract_ims(cp::SolveStatus::HeuristicFallback);
        best_actual = best.actual_ii;
        best_is_ims = true;
    }
    for (int ii = best.ii_lower_bound; ii <= options.max_ii; ++ii) {
        if (ii >= best_actual) break;  // R >= 0: no larger II can win
        if (deadline.expired()) break;
        // Only R values that could improve on the incumbent are relevant.
        const int budget =
            best_actual == INT32_MAX
                ? g.num_nodes()
                : std::max(0, (best_actual - 1 - ii) / std::max(1, spec.reconfig_cycles));
        const IiAttempt attempt =
            try_ii(spec, g, ii, horizon, true, budget, deadline, options.solver);
        bill_attempt(attempt);
        if (!attempt.result.has_solution()) continue;
        const int r = attempt.result.value_of(attempt.reconfig_count);
        const int actual = ii + r * spec.reconfig_cycles;
        if (actual < best_actual) {
            best_actual = actual;
            extract(attempt, ii);
            // extract() recomputes reconfigs from residues; the model's R may
            // be lower than the naive count when nop interpolation helps, so
            // trust the model's value.
            best.reconfigs = r;
            best.actual_ii = actual;
            best.throughput = 1.0 / actual;
            best.status = attempt.result.status == cp::SolveStatus::Optimal
                              ? cp::SolveStatus::Optimal
                              : cp::SolveStatus::SatTimeout;
            best_is_ims = false;
        }
    }
    if (best_actual == INT32_MAX) {
        best.status = deadline.expired() ? cp::SolveStatus::Timeout : cp::SolveStatus::Unsat;
    } else if (best_is_ims) {
        // Nothing beat the IMS kernel: a completed scan proves it optimal.
        if (!deadline.expired()) best.status = cp::SolveStatus::Optimal;
    }
    best.time_ms = watch.elapsed_ms();
    return best;
}

}  // namespace revec::pipeline
