// Overlapped execution (paper §4.3): the architects' ad-hoc two-phase
// technique. Phase one orders the instructions of a single iteration
// (either from a CP schedule — "automated" — or from the instruction-count-
// minimizing packer in manual.hpp — "manual"); phase two executes the same
// instruction from M iterations back to back, masking the pipeline latency
// when M is at least the pipeline depth, and paying one reconfiguration per
// configuration change between adjacent instruction positions.
#pragma once

#include <string>
#include <vector>

#include "revec/arch/spec.hpp"
#include "revec/ir/graph.hpp"
#include "revec/sched/schedule.hpp"

namespace revec::pipeline {

/// One instruction of the single-iteration sequence: everything issued in
/// the same cycle (up to four same-configuration vector ops plus scalar and
/// index/merge operations on their own units).
struct InstructionSlot {
    std::vector<int> ops;       ///< op node ids issued together
    std::string vector_config;  ///< config key of the slot's vector ops ("" = none)
};

/// An ordered single-iteration instruction sequence.
struct IterationSequence {
    std::vector<InstructionSlot> slots;

    int num_instructions() const { return static_cast<int>(slots.size()); }

    /// Configuration changes between adjacent instruction positions
    /// (vector pipeline only; empty-config slots keep the last
    /// configuration loaded). The initial configuration load is not
    /// counted.
    int config_changes() const;
};

/// Compress a (memory-aware or not) schedule into its issue sequence:
/// one slot per cycle that issues at least one operation, in time order.
IterationSequence sequence_from_schedule(const arch::ArchSpec& spec, const ir::Graph& g,
                                         const std::vector<int>& op_start);

/// Result of overlapping M iterations of a sequence.
struct OverlapResult {
    int iterations = 0;
    int schedule_length = 0;   ///< total clock cycles for all M iterations
    int reconfigurations = 0;  ///< including the initial configuration load
    double reconfigs_per_iteration = 0.0;
    double throughput = 0.0;   ///< iterations per clock cycle
    int stalls_inserted = 0;   ///< extra cycles when M is too small to mask latency

    /// Issue cycle of instruction position k, iteration m:
    /// cycle = block_base[k] + m.
    std::vector<int> block_base;
};

/// Overlap M iterations of the sequence (M >= 1). Dependencies that the
/// M-wide spacing cannot mask are honoured by inserting stall cycles at the
/// violating block boundary.
OverlapResult overlapped_execution(const arch::ArchSpec& spec, const ir::Graph& g,
                                   const IterationSequence& seq, int iterations);

}  // namespace revec::pipeline
