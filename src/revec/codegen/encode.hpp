// Binary encoding of machine instructions into configuration words. The
// EIT's resource elements are driven by "embedded configuration memories,
// which are re-loadable in every clock cycle" (§1.1); this module packs a
// MachineInstr into fixed-width words per resource element and decodes them
// back, so generated programs have a concrete binary artifact.
//
// Word layout (64 bits each):
//
//   vector word   [63:56] opcode  [55:48] pre-op  [47:40] post-op
//                 [39:32] imm      [31:24] lane count
//                 [23:16] src0 slot [15:8] src1 slot [7:0] dst slot
//                 (slot fields hold slot+1; 0 = unused/scalar operand)
//   scalar word   [63:56] opcode  [55:40] src0 reg [39:24] src1 reg
//                 [23:8]  dst reg [7:0] reserved
//   ix word       [63:56] opcode  [55:48] imm [47:40] src/dst slot+1
//                 [39:24] dst reg [23:8] src reg ... (see encode_ix)
#pragma once

#include <cstdint>
#include <vector>

#include "revec/codegen/codegen.hpp"

namespace revec::codegen {

/// One cycle's packed configuration: which resources are (re)configured.
struct ConfigBundle {
    int cycle = 0;
    std::vector<std::uint64_t> vector_words;  ///< one per vector op issued
    std::vector<std::uint64_t> scalar_words;
    std::vector<std::uint64_t> ix_words;
};

/// Numeric opcode of a catalogue operation (stable across runs).
std::uint8_t opcode_of(const std::string& op_name);
/// Inverse of opcode_of; throws revec::Error for unknown opcodes.
const std::string& op_name_of(std::uint8_t opcode);

/// Pack a whole program. Slot and register indices must fit the fields
/// (slots < 255, scalar registers < 65535); throws revec::Error otherwise.
std::vector<ConfigBundle> encode_program(const ir::Graph& g, const MachineProgram& prog);

/// Decoded view of one vector word (for tests and disassembly).
struct DecodedVectorWord {
    std::string op;
    std::string pre_op;   // empty if none
    std::string post_op;  // empty if none
    int imm = 0;
    int lanes = 0;
    int src0_slot = -1;  // -1 = unused / scalar operand
    int src1_slot = -1;
    int dst_slot = -1;
};

DecodedVectorWord decode_vector_word(std::uint64_t word);

/// Total size of the encoded program in bytes.
std::size_t encoded_size_bytes(const std::vector<ConfigBundle>& bundles);

}  // namespace revec::codegen
