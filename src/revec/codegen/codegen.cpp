#include "revec/codegen/codegen.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "revec/ir/analysis.hpp"
#include "revec/support/assert.hpp"

namespace revec::codegen {

namespace {

OpIssue make_issue(const ir::Graph& g, const sched::Schedule& sched, int op) {
    OpIssue issue;
    issue.op_node = op;
    for (const int d : g.preds(op)) {
        const ir::Node& data = g.node(d);
        if (data.cat == ir::NodeCat::VectorData) {
            const int slot = sched.slot[static_cast<std::size_t>(d)];
            if (slot < 0) throw Error("vector data node " + std::to_string(d) + " has no slot");
            issue.src_slots.push_back(slot);
        } else {
            issue.src_scalars.push_back(d);
        }
    }
    const auto& outs = g.succs(op);
    if (outs.size() == 1) {
        const ir::Node& data = g.node(outs[0]);
        if (data.cat == ir::NodeCat::VectorData) {
            issue.dst_slot = sched.slot[static_cast<std::size_t>(outs[0])];
            if (issue.dst_slot < 0) {
                throw Error("vector result node " + std::to_string(outs[0]) + " has no slot");
            }
        } else {
            issue.dst_scalar = outs[0];
        }
    } else {
        for (const int o : outs) {
            const int slot = sched.slot[static_cast<std::size_t>(o)];
            if (slot < 0) throw Error("matrix result node " + std::to_string(o) + " has no slot");
            issue.dst_slots.push_back(slot);
        }
    }
    return issue;
}

}  // namespace

MachineProgram generate_code(const arch::ArchSpec& spec, const ir::Graph& g,
                             const sched::Schedule& sched) {
    if (!sched.feasible()) throw Error("cannot generate code from an infeasible schedule");
    REVEC_EXPECTS(sched.start.size() == static_cast<std::size_t>(g.num_nodes()));

    MachineProgram prog;
    prog.slot_of_data.assign(static_cast<std::size_t>(g.num_nodes()), -1);
    for (const ir::Node& node : g.nodes()) {
        if (node.cat == ir::NodeCat::VectorData) {
            prog.slot_of_data[static_cast<std::size_t>(node.id)] =
                sched.slot[static_cast<std::size_t>(node.id)];
        }
    }

    std::map<int, MachineInstr> by_cycle;
    for (const ir::Node& node : g.nodes()) {
        if (!node.is_op()) continue;
        const int t = sched.start[static_cast<std::size_t>(node.id)];
        MachineInstr& instr = by_cycle[t];
        instr.cycle = t;
        const ir::NodeTiming timing = ir::node_timing(spec, node);
        const OpIssue issue = make_issue(g, sched, node.id);
        if (timing.lanes > 0) {
            const std::string key = ir::config_key(node);
            REVEC_ASSERT(instr.vector_config.empty() || instr.vector_config == key);
            instr.vector_config = key;
            instr.vector_ops.push_back(issue);
        } else if (node.cat == ir::NodeCat::ScalarOp) {
            instr.scalar_ops.push_back(issue);
        } else {
            instr.ix_ops.push_back(issue);
        }
    }

    std::string current_config;
    for (auto& [cycle, instr] : by_cycle) {
        if (!instr.vector_config.empty() && instr.vector_config != current_config) {
            ++prog.reconfigurations;
            current_config = instr.vector_config;
        }
        prog.instrs.push_back(std::move(instr));
    }
    prog.length = sched.makespan;
    return prog;
}

std::string MachineProgram::to_listing(const ir::Graph& g) const {
    std::ostringstream os;
    const auto slots = [](const std::vector<int>& xs) {
        std::string out;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            if (i > 0) out += ",";
            out += "M[" + std::to_string(xs[i]) + "]";
        }
        return out;
    };
    for (const MachineInstr& instr : instrs) {
        os << "t=" << instr.cycle << ":";
        if (!instr.vector_config.empty()) {
            os << " vec<" << instr.vector_config << ">";
            for (const OpIssue& op : instr.vector_ops) {
                os << " " << g.node(op.op_node).op << "(" << slots(op.src_slots);
                for (const int r : op.src_scalars) os << ",r" << r;
                os << ")->";
                if (op.dst_slot >= 0) {
                    os << "M[" << op.dst_slot << "]";
                } else if (!op.dst_slots.empty()) {
                    os << slots(op.dst_slots);
                } else {
                    os << "r" << op.dst_scalar;
                }
                os << ";";
            }
        }
        for (const OpIssue& op : instr.scalar_ops) {
            os << " acc:" << g.node(op.op_node).op << "->r" << op.dst_scalar << ";";
        }
        for (const OpIssue& op : instr.ix_ops) {
            os << " ix:" << g.node(op.op_node).op;
            if (op.dst_slot >= 0) os << "->M[" << op.dst_slot << "]";
            if (op.dst_scalar >= 0) os << "->r" << op.dst_scalar;
            os << ";";
        }
        os << '\n';
    }
    return os.str();
}

}  // namespace revec::codegen
