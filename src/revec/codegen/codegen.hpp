// Code generation: turn a schedule + memory allocation into machine code
// for the EIT model — per-cycle configuration bundles naming, for every
// resource, the operation to configure and the memory slots / operand
// registers involved. "The output is a schedule with memory allocation that
// contains all information needed by a code generator turning this schedule
// into machine code" (paper §1); this module is that code generator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "revec/arch/spec.hpp"
#include "revec/ir/graph.hpp"
#include "revec/sched/schedule.hpp"

namespace revec::codegen {

/// One operation issue: which IR op, where its vector operands live, where
/// the result goes. Scalar operands/results are named by virtual scalar
/// registers (the paper assumes optimal allocation for scalar data).
struct OpIssue {
    int op_node = -1;
    std::vector<int> src_slots;      ///< vector operand slots (issue order)
    std::vector<int> src_scalars;    ///< scalar operand registers (data node ids)
    int dst_slot = -1;               ///< vector result slot (-1 if scalar result)
    std::vector<int> dst_slots;      ///< matrix results (4 slots) when applicable
    int dst_scalar = -1;             ///< scalar result register (-1 if vector)
};

/// Everything issued in one clock cycle.
struct MachineInstr {
    int cycle = 0;
    std::string vector_config;       ///< loaded configuration ("" = none issued)
    std::vector<OpIssue> vector_ops;
    std::vector<OpIssue> scalar_ops;
    std::vector<OpIssue> ix_ops;
};

/// A complete machine program for one kernel iteration.
struct MachineProgram {
    std::vector<MachineInstr> instrs;  ///< ascending by cycle; idle cycles omitted
    std::vector<int> slot_of_data;     ///< per data node id; -1 for scalar data
    int length = 0;                    ///< schedule length in cycles
    int reconfigurations = 0;          ///< config changes over the issue sequence
                                       ///< (including the initial load)

    /// Render a human-readable assembly-like listing.
    std::string to_listing(const ir::Graph& g) const;
};

/// Generate machine code from a memory-allocated schedule. The schedule must
/// be feasible and verified; throws revec::Error on missing slots.
MachineProgram generate_code(const arch::ArchSpec& spec, const ir::Graph& g,
                             const sched::Schedule& sched);

}  // namespace revec::codegen
