#include "revec/codegen/encode.hpp"

#include <map>

#include "revec/arch/ops.hpp"
#include "revec/ir/analysis.hpp"
#include "revec/support/assert.hpp"

namespace revec::codegen {

namespace {

/// Stable opcode table: catalogue order, 1-based (0 = "no operation").
const std::vector<std::string>& opcode_table() {
    static const std::vector<std::string> table = [] {
        std::vector<std::string> t;
        t.emplace_back("");  // opcode 0 reserved
        for (const arch::OpInfo& info : arch::all_ops()) t.push_back(info.name);
        return t;
    }();
    return table;
}

std::uint64_t field(std::uint64_t value, int shift) { return value << shift; }

void require_fits(std::int64_t value, std::int64_t max, const char* what) {
    if (value < 0 || value > max) {
        throw Error(std::string("cannot encode ") + what + " value " +
                    std::to_string(value));
    }
}

std::uint64_t encode_vector(const ir::Graph& g, const OpIssue& issue) {
    const ir::Node& node = g.node(issue.op_node);
    const std::uint8_t op = opcode_of(node.op);
    const std::uint8_t pre = node.pre_op.empty() ? 0 : opcode_of(node.pre_op);
    const std::uint8_t post = node.post_op.empty() ? 0 : opcode_of(node.post_op);
    require_fits(node.imm, 255, "immediate");
    const int lanes = arch::op_info(node.op).lanes;

    const auto slot_field = [](const std::vector<int>& slots, std::size_t i) -> std::uint64_t {
        if (i >= slots.size()) return 0;
        require_fits(slots[i], 253, "slot");
        return static_cast<std::uint64_t>(slots[i] + 1);
    };
    const std::uint64_t dst =
        issue.dst_slot >= 0 ? static_cast<std::uint64_t>(issue.dst_slot + 1)
        : !issue.dst_slots.empty() ? static_cast<std::uint64_t>(issue.dst_slots[0] + 1)
                                   : 0;
    return field(op, 56) | field(pre, 48) | field(post, 40) |
           field(static_cast<std::uint64_t>(node.imm), 32) |
           field(static_cast<std::uint64_t>(lanes), 24) | field(slot_field(issue.src_slots, 0), 16) |
           field(slot_field(issue.src_slots, 1), 8) | dst;
}

std::uint64_t encode_scalar(const ir::Graph& g, const OpIssue& issue) {
    const ir::Node& node = g.node(issue.op_node);
    const std::uint8_t op = opcode_of(node.op);
    const auto reg_field = [](const std::vector<int>& regs, std::size_t i) -> std::uint64_t {
        if (i >= regs.size()) return 0;
        require_fits(regs[i], 65534, "scalar register");
        return static_cast<std::uint64_t>(regs[i] + 1);
    };
    require_fits(issue.dst_scalar, 65534, "scalar register");
    return field(op, 56) | field(reg_field(issue.src_scalars, 0), 40) |
           field(reg_field(issue.src_scalars, 1), 24) |
           field(static_cast<std::uint64_t>(issue.dst_scalar + 1), 8);
}

std::uint64_t encode_ix(const ir::Graph& g, const OpIssue& issue) {
    const ir::Node& node = g.node(issue.op_node);
    const std::uint8_t op = opcode_of(node.op);
    require_fits(node.imm, 255, "immediate");
    const std::uint64_t slot =
        issue.dst_slot >= 0   ? static_cast<std::uint64_t>(issue.dst_slot + 1)
        : !issue.src_slots.empty() ? static_cast<std::uint64_t>(issue.src_slots[0] + 1)
                                   : 0;
    const std::uint64_t reg =
        issue.dst_scalar >= 0 ? static_cast<std::uint64_t>(issue.dst_scalar + 1)
        : !issue.src_scalars.empty() ? static_cast<std::uint64_t>(issue.src_scalars[0] + 1)
                                     : 0;
    return field(op, 56) | field(static_cast<std::uint64_t>(node.imm), 48) |
           field(slot, 40) | field(reg, 24);
}

}  // namespace

std::uint8_t opcode_of(const std::string& op_name) {
    const auto& table = opcode_table();
    for (std::size_t i = 1; i < table.size(); ++i) {
        if (table[i] == op_name) return static_cast<std::uint8_t>(i);
    }
    throw Error("no opcode for operation '" + op_name + "'");
}

const std::string& op_name_of(std::uint8_t opcode) {
    const auto& table = opcode_table();
    if (opcode == 0 || opcode >= table.size()) {
        throw Error("unknown opcode " + std::to_string(opcode));
    }
    return table[opcode];
}

std::vector<ConfigBundle> encode_program(const ir::Graph& g, const MachineProgram& prog) {
    std::vector<ConfigBundle> bundles;
    bundles.reserve(prog.instrs.size());
    for (const MachineInstr& instr : prog.instrs) {
        ConfigBundle bundle;
        bundle.cycle = instr.cycle;
        for (const OpIssue& issue : instr.vector_ops) {
            bundle.vector_words.push_back(encode_vector(g, issue));
        }
        for (const OpIssue& issue : instr.scalar_ops) {
            bundle.scalar_words.push_back(encode_scalar(g, issue));
        }
        for (const OpIssue& issue : instr.ix_ops) {
            bundle.ix_words.push_back(encode_ix(g, issue));
        }
        bundles.push_back(std::move(bundle));
    }
    return bundles;
}

DecodedVectorWord decode_vector_word(std::uint64_t word) {
    DecodedVectorWord d;
    d.op = op_name_of(static_cast<std::uint8_t>(word >> 56));
    const auto pre = static_cast<std::uint8_t>((word >> 48) & 0xff);
    const auto post = static_cast<std::uint8_t>((word >> 40) & 0xff);
    if (pre != 0) d.pre_op = op_name_of(pre);
    if (post != 0) d.post_op = op_name_of(post);
    d.imm = static_cast<int>((word >> 32) & 0xff);
    d.lanes = static_cast<int>((word >> 24) & 0xff);
    const auto slot = [&](int shift) {
        const int raw = static_cast<int>((word >> shift) & 0xff);
        return raw == 0 ? -1 : raw - 1;
    };
    d.src0_slot = slot(16);
    d.src1_slot = slot(8);
    d.dst_slot = slot(0);
    return d;
}

std::size_t encoded_size_bytes(const std::vector<ConfigBundle>& bundles) {
    std::size_t words = 0;
    for (const ConfigBundle& b : bundles) {
        words += b.vector_words.size() + b.scalar_words.size() + b.ix_words.size();
    }
    return words * sizeof(std::uint64_t);
}

}  // namespace revec::codegen
