#include "revec/support/table.hpp"

#include <algorithm>
#include <ostream>

#include "revec/support/assert.hpp"

namespace revec {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    REVEC_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
    REVEC_EXPECTS(cells.size() == header_.size());
    rows_.push_back(std::move(cells));
}

void Table::add_rule() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }

    const auto print_rule = [&] {
        os << '+';
        for (const std::size_t w : width) {
            for (std::size_t i = 0; i < w + 2; ++i) os << '-';
            os << '+';
        }
        os << '\n';
    };
    const auto print_cells = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c];
            for (std::size_t i = cells[c].size(); i < width[c] + 1; ++i) os << ' ';
            os << '|';
        }
        os << '\n';
    };

    print_rule();
    print_cells(header_);
    print_rule();
    for (const auto& row : rows_) {
        if (row.empty()) {
            print_rule();
        } else {
            print_cells(row);
        }
    }
    print_rule();
}

}  // namespace revec
