#include "revec/support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "revec/support/assert.hpp"

namespace revec {

std::vector<std::string> split(std::string_view s, char sep) {
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (true) {
        const std::size_t pos = s.find(sep, begin);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(begin));
            return out;
        }
        out.emplace_back(s.substr(begin, pos - begin));
        begin = pos + 1;
    }
}

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
    return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

long long parse_int(std::string_view s) {
    s = trim(s);
    long long value = 0;
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
    if (ec != std::errc{} || ptr != s.data() + s.size()) {
        throw Error("malformed integer: '" + std::string(s) + "'");
    }
    return value;
}

double parse_double(std::string_view s) {
    s = trim(s);
    // std::from_chars for doubles is not available on all libstdc++ configs;
    // go through a bounded sscanf instead.
    const std::string buf(s);
    double value = 0;
    int consumed = 0;
    if (std::sscanf(buf.c_str(), "%lf%n", &value, &consumed) != 1 ||
        static_cast<std::size_t>(consumed) != buf.size()) {
        throw Error("malformed number: '" + buf + "'");
    }
    return value;
}

std::string format_fixed(double v, int prec) {
    REVEC_EXPECTS(prec >= 0 && prec <= 17);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
    // Two-row dynamic program; row[j] = distance between a[0..i) and b[0..j).
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];  // row[i-1][j-1]
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({subst, up + 1, row[j - 1] + 1});
            diag = up;
        }
    }
    return row[b.size()];
}

bool glob_match(std::string_view pattern, std::string_view s) {
    // Iterative matcher with single-star backtracking: on mismatch, retry
    // from the most recent '*' consuming one more character.
    std::size_t p = 0;
    std::size_t i = 0;
    std::size_t star = std::string_view::npos;  // position after the last '*'
    std::size_t mark = 0;                       // s position the star resumed at
    while (i < s.size()) {
        if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == s[i])) {
            ++p;
            ++i;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = ++p;
            mark = i;
        } else if (star != std::string_view::npos) {
            p = star;
            i = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

}  // namespace revec
