// Minimal JSON value, recursive-descent parser, and compact writer shared
// by the trace reader (obs/trace_read), the KernelModel deserializer
// (model/json), and the service protocol (svc/protocol). Only what those
// consumers need: objects, arrays, strings, numbers, booleans, null.
// Numbers are kept as doubles (every value the repo's serializers write
// fits a double exactly); object fields preserve insertion order so
// round-tripping is deterministic. No third-party dependency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace revec::json {

struct Value {
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;  // insertion order

    /// First field named `key`, or nullptr. Linear scan: the documents this
    /// module handles have small objects.
    const Value* find(const std::string& key) const {
        for (const auto& [k, v] : object) {
            if (k == key) return &v;
        }
        return nullptr;
    }

    bool is(Type t) const { return type == t; }
};

/// Parse one complete JSON document. Throws revec::Error (with the byte
/// offset) on malformed input or trailing content.
Value parse(std::string_view text);

/// Serialize `v` on a single line with no insignificant whitespace —
/// the framing the newline-delimited service protocol requires. Field
/// order is the stored (insertion) order, so parse -> write_compact is
/// deterministic.
void write_compact(const Value& v, std::ostream& os);
std::string to_compact_string(const Value& v);

/// Append `s` as a quoted, escaped JSON string literal. Shared by the
/// hand-rolled serializers that do not build a Value tree first.
void append_escaped(std::ostream& os, std::string_view s);

}  // namespace revec::json
