#include "revec/support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::json {

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content after JSON value");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
            ++pos_;
        }
    }

    char peek() {
        skip_ws();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    Value parse_value() {
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return parse_string();
            case 't':
            case 'f': return parse_bool();
            case 'n': return parse_null();
            default: return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Value v;
        v.type = Value::Type::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            Value key = parse_string();
            expect(':');
            v.object.emplace_back(std::move(key.str), parse_value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value parse_array() {
        expect('[');
        Value v;
        v.type = Value::Type::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parse_value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Value parse_string() {
        expect('"');
        Value v;
        v.type = Value::Type::String;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return v;
            if (c != '\\') {
                v.str.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': v.str.push_back('"'); break;
                case '\\': v.str.push_back('\\'); break;
                case '/': v.str.push_back('/'); break;
                case 'n': v.str.push_back('\n'); break;
                case 't': v.str.push_back('\t'); break;
                case 'r': v.str.push_back('\r'); break;
                case 'b': v.str.push_back('\b'); break;
                case 'f': v.str.push_back('\f'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    // ASCII-only documents: decode the low byte, reject the
                    // rest.
                    int code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code = code * 16;
                        if (h >= '0' && h <= '9') {
                            code += h - '0';
                        } else if (h >= 'a' && h <= 'f') {
                            code += 10 + (h - 'a');
                        } else if (h >= 'A' && h <= 'F') {
                            code += 10 + (h - 'A');
                        } else {
                            fail("bad hex digit in \\u escape");
                        }
                    }
                    if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
                    v.str.push_back(static_cast<char>(code));
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Value parse_bool() {
        Value v;
        v.type = Value::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    Value parse_null() {
        if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
        pos_ += 4;
        return {};
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        Value v;
        v.type = Value::Type::Number;
        try {
            v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
        } catch (const std::exception&) {
            fail("malformed number");
        }
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

/// Integers round-trip as integers; everything else keeps a shortest-ish
/// double form. The repo's serializers only ever write integral numbers,
/// so the integer path is the one that matters for byte-determinism.
void append_number(std::ostream& os, double v) {
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e18) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

void append_escaped(std::ostream& os, std::string_view s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            case '\r': os << "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_compact(const Value& v, std::ostream& os) {
    switch (v.type) {
        case Value::Type::Null: os << "null"; return;
        case Value::Type::Bool: os << (v.boolean ? "true" : "false"); return;
        case Value::Type::Number: append_number(os, v.number); return;
        case Value::Type::String: append_escaped(os, v.str); return;
        case Value::Type::Array: {
            os << '[';
            for (std::size_t i = 0; i < v.array.size(); ++i) {
                if (i > 0) os << ',';
                write_compact(v.array[i], os);
            }
            os << ']';
            return;
        }
        case Value::Type::Object: {
            os << '{';
            for (std::size_t i = 0; i < v.object.size(); ++i) {
                if (i > 0) os << ',';
                append_escaped(os, v.object[i].first);
                os << ':';
                write_compact(v.object[i].second, os);
            }
            os << '}';
            return;
        }
    }
    REVEC_UNREACHABLE("bad json::Value::Type");
}

std::string to_compact_string(const Value& v) {
    std::ostringstream os;
    write_compact(v, os);
    return os.str();
}

}  // namespace revec::json
