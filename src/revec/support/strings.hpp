// Small string helpers shared by the XML module, IR I/O, and the benchmark
// table printers. Deliberately minimal: only what the library actually uses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace revec {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Remove leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool ends_with(std::string_view s, std::string_view suffix);

/// Parse a decimal integer; throws revec::Error on malformed input.
long long parse_int(std::string_view s);

/// Parse a floating-point number; throws revec::Error on malformed input.
double parse_double(std::string_view s);

/// Format a double with `prec` significant decimal digits after the point.
std::string format_fixed(double v, int prec);

/// Levenshtein edit distance (insertions, deletions, substitutions). Used
/// for "did you mean" suggestions on mistyped command-line flags.
std::size_t edit_distance(std::string_view a, std::string_view b);

/// Shell-style glob match: '*' matches any run of characters (including
/// empty), '?' matches exactly one; everything else is literal. Used for
/// metric-name patterns in revec-stats diff tolerance rules.
bool glob_match(std::string_view pattern, std::string_view s);

}  // namespace revec
