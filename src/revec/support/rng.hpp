// Deterministic xorshift RNG shared by the kernel builders and the random
// workload generator. Not cryptographic; chosen for exact reproducibility
// across platforms (no <random> distribution variability).
#pragma once

#include <cstdint>

namespace revec {

class XorShift {
public:
    explicit XorShift(std::uint32_t seed) : state_(seed == 0 ? 0x9e3779b9u : seed) {}

    std::uint32_t next() {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 17;
        state_ ^= state_ << 5;
        return state_;
    }

    /// Uniform in [0, n).
    int below(int n) { return static_cast<int>(next() % static_cast<std::uint32_t>(n)); }

    /// Uniform in [-1, 1).
    double unit() {
        return static_cast<double>(next() >> 1) / static_cast<double>(1u << 30) - 1.0;
    }

private:
    std::uint32_t state_;
};

}  // namespace revec
