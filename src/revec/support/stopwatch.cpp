#include "revec/support/stopwatch.hpp"

namespace revec {

double Stopwatch::elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
}

std::int64_t Stopwatch::elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() - start_).count();
}

Deadline Deadline::after_ms(std::int64_t ms) {
    Deadline d;
    if (ms >= 0) {
        d.armed_ = true;
        d.when_ = Stopwatch::clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
}

bool Deadline::expired() const { return armed_ && Stopwatch::clock::now() >= when_; }

}  // namespace revec
