// Aligned console-table printer used by the benchmark harnesses so that the
// reproduced tables read like the ones in the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace revec {

/// Collects rows of string cells and prints them with aligned columns.
///
///     Table t({"Application", "II (cc)", "throughput"});
///     t.add_row({"QRD", "46", "0.022"});
///     t.print(std::cout);
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Insert a horizontal rule before the next added row.
    void add_rule();

    void print(std::ostream& os) const;

    std::size_t rows() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;  // empty vector encodes a rule
};

}  // namespace revec
