// Wall-clock stopwatch and deadline helpers used by the CP search (solver
// timeouts) and by the benchmark harnesses (optimization-time columns).
#pragma once

#include <chrono>
#include <cstdint>

namespace revec {

/// Monotonic wall-clock stopwatch. Started on construction.
class Stopwatch {
public:
    using clock = std::chrono::steady_clock;

    Stopwatch() : start_(clock::now()) {}

    void restart() { start_ = clock::now(); }

    /// Elapsed time in milliseconds since construction/restart.
    double elapsed_ms() const;

    /// Elapsed time in microseconds since construction/restart.
    std::int64_t elapsed_us() const;

private:
    clock::time_point start_;
};

/// A point in time after which long-running work should stop. A
/// default-constructed deadline never expires.
class Deadline {
public:
    Deadline() = default;

    /// Deadline `ms` milliseconds from now; `ms < 0` means "never".
    static Deadline after_ms(std::int64_t ms);

    bool expired() const;
    bool never_expires() const { return !armed_; }

private:
    bool armed_ = false;
    Stopwatch::clock::time_point when_{};
};

}  // namespace revec
