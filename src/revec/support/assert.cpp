#include "revec/support/assert.hpp"

#include <sstream>

namespace revec {

ContractViolation::ContractViolation(const char* kind, const char* expr, const char* file,
                                     int line, std::string detail)
    : std::logic_error([&] {
          std::ostringstream os;
          os << kind << " failed: " << expr << " at " << file << ":" << line;
          if (!detail.empty()) os << " (" << detail << ")";
          return os.str();
      }()),
      detail_(std::move(detail)) {}

namespace detail {

void contract_fail(const char* kind, const char* expr, const char* file, int line) {
    throw ContractViolation(kind, expr, file, line);
}

}  // namespace detail
}  // namespace revec
