// Contract-checking macros in the style of the C++ Core Guidelines GSL
// (Expects/Ensures). Violations throw revec::ContractViolation so tests can
// assert on them; they are never compiled out, because this library's
// correctness (schedules that real hardware would execute) matters more than
// the nanoseconds saved.
#pragma once

#include <stdexcept>
#include <string>

namespace revec {

/// Thrown when a precondition, postcondition, or internal invariant fails.
class ContractViolation : public std::logic_error {
public:
    ContractViolation(const char* kind, const char* expr, const char* file, int line,
                      std::string detail = {});
    const std::string& detail() const noexcept { return detail_; }

private:
    std::string detail_;
};

/// Thrown for errors caused by user input (bad IR files, infeasible models
/// requested with contradictory parameters, ...), as opposed to library bugs.
class Error : public std::runtime_error {
public:
    explicit Error(std::string what) : std::runtime_error(std::move(what)) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace revec

#define REVEC_EXPECTS(cond)                                                          \
    do {                                                                             \
        if (!(cond)) ::revec::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__); \
    } while (false)

#define REVEC_ENSURES(cond)                                                          \
    do {                                                                             \
        if (!(cond)) ::revec::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__); \
    } while (false)

#define REVEC_ASSERT(cond)                                                           \
    do {                                                                             \
        if (!(cond)) ::revec::detail::contract_fail("Invariant", #cond, __FILE__, __LINE__); \
    } while (false)

#define REVEC_UNREACHABLE(msg) \
    ::revec::detail::contract_fail("Unreachable", msg, __FILE__, __LINE__)
