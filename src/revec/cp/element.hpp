// Element constraint: result = array[index], where the array entries are
// themselves variables. Used for table-driven couplings (e.g. per-residue
// configuration lookups) and provided as a standard part of the FD kernel.
#pragma once

#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// Post result == array[index]. `index` is confined to [0, array.size()).
void post_element(Store& store, IntVar index, std::vector<IntVar> array, IntVar result);

/// Post result == values[index] for a constant table.
void post_element_const(Store& store, IntVar index, std::vector<int> values, IntVar result);

}  // namespace revec::cp
