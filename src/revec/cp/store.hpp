// The constraint store: owns variable domains and propagators, runs
// propagation to fixpoint, and supports chronological backtracking through
// a trail of saved domains.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "revec/cp/domain.hpp"
#include "revec/cp/propagator.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// Counters describing the work a store (and the search on top of it) did.
struct PropagationStats {
    std::int64_t propagations = 0;  ///< propagator executions
    std::int64_t domain_changes = 0;
};

class Store {
public:
    Store() = default;
    Store(const Store&) = delete;
    Store& operator=(const Store&) = delete;

    // -- variables -----------------------------------------------------------
    IntVar new_var(int lo, int hi, std::string name = {});
    IntVar new_var(Domain dom, std::string name = {});
    BoolVar new_bool(std::string name = {});

    std::size_t num_vars() const { return doms_.size(); }
    const Domain& dom(IntVar x) const { return doms_[check(x)]; }
    const std::string& name(IntVar x) const { return names_[check(x)]; }

    int min(IntVar x) const { return dom(x).min(); }
    int max(IntVar x) const { return dom(x).max(); }
    bool fixed(IntVar x) const { return dom(x).is_fixed(); }
    int value(IntVar x) const { return dom(x).value(); }

    // -- domain modification (propagator + search API) -----------------------
    // Each returns false iff the domain became empty (failure). All record
    // the previous domain on the trail so backtracking restores it.
    bool set_min(IntVar x, std::int64_t v);
    bool set_max(IntVar x, std::int64_t v);
    bool assign(IntVar x, std::int64_t v);
    bool remove(IntVar x, std::int64_t v);
    bool remove_range(IntVar x, std::int64_t lo, std::int64_t hi);
    bool intersect(IntVar x, const Domain& d);

    // -- propagators ----------------------------------------------------------
    /// Take ownership of `p`, subscribe it to `watched`, and schedule it.
    void post(std::unique_ptr<Propagator> p, const std::vector<IntVar>& watched);

    /// Run the propagation queue to fixpoint. Returns false on failure.
    bool propagate();

    bool failed() const { return failed_; }

    // -- search support --------------------------------------------------------
    /// Open a new choice level. Returns the new level number.
    int push_level();
    /// Undo all domain changes made since the matching push_level, clear the
    /// failure flag and the propagation queue.
    void pop_level();
    int level() const { return level_; }

    const PropagationStats& stats() const { return stats_; }

    /// Debug helper: render all variables and their domains.
    std::string dump() const;

private:
    std::size_t check(IntVar x) const;
    void save_domain(std::size_t idx);
    void on_change(std::size_t idx);
    void schedule(int prop_id);

    struct TrailEntry {
        std::int32_t var;
        std::int32_t prev_saved_level;
        Domain saved;
    };

    std::vector<Domain> doms_;
    std::vector<std::string> names_;
    std::vector<std::int32_t> last_saved_level_;
    std::vector<std::vector<int>> watchers_;

    std::vector<std::unique_ptr<Propagator>> props_;
    std::deque<int> queue_;
    std::vector<char> queued_;

    std::vector<TrailEntry> trail_;
    std::vector<std::size_t> level_marks_;
    int level_ = 0;
    bool failed_ = false;

    PropagationStats stats_;
};

}  // namespace revec::cp
