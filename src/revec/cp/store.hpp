// The constraint store: owns variable domains and propagators, runs
// propagation to fixpoint, and supports chronological backtracking through
// a trail of saved domains.
//
// The propagation engine is event-driven:
//  * every mutation computes the typed events it fired (MIN/MAX/FIXED/
//    DOMAIN) and wakes only watchers whose event mask matches;
//  * the runnable queue is bucketed by propagator priority and drained
//    cheapest-first, with self-wakeups suppressed for propagators that
//    declare idempotence;
//  * the trail records compact bound-change deltas — a full domain
//    snapshot is taken only when a hole-carrying domain changes shape.
// All three mechanisms are fixpoint-preserving, so the search tree is
// identical to the legacy flat-FIFO/full-snapshot engine (EngineConfig
// can re-enable the legacy behaviors for differential testing).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "revec/cp/domain.hpp"
#include "revec/cp/propagator.hpp"
#include "revec/cp/var.hpp"
#include "revec/support/assert.hpp"

namespace revec::obs {
class TraceBuffer;
class MetricsRegistry;
}  // namespace revec::obs

namespace revec::cp {

/// Engine feature toggles. Defaults are the event-driven engine; legacy()
/// reproduces the original engine (wake on any change, single FIFO, full
/// domain snapshots) for node-parity differential tests and benchmarks.
struct EngineConfig {
    bool event_masks = true;      ///< filter wakeups by subscription mask
    bool priority_queue = true;   ///< bucket the queue by Propagator::priority()
    bool idempotence = true;      ///< suppress self-wakeups of idempotent props
    bool delta_trail = true;      ///< trail bound deltas instead of snapshots
    bool packed_domains = true;   ///< word-packed bitmaps for hole-rich domains

    /// Starvation bound for chain-creep propagation episodes. Ordinarily
    /// an episode (one propagate() call) drains in strict priority order —
    /// wakeups coalesce on the queued costlier propagators, which then run
    /// once against the settled cheap fixpoint. But an episode whose
    /// cheapest-first pop count reaches escalation_pops while each popped
    /// propagator has run only ~once (pops*100 <= distinct propagators *
    /// escalation_rerun_pct) is creeping through a long spatial chain of
    /// one-shot bound nudges that one run of a waiting costlier propagator
    /// would collapse — or probing a doomed node only a global can refute.
    /// While that holds, after starvation_limit consecutive pops that
    /// bypassed a waiting costlier bucket, the costliest waiting bucket is
    /// interleaved once. A settle that keeps re-running the same few
    /// propagators (legitimate iterative convergence) fails the ratio test
    /// and drains strictly. Any drain order reaches the same fixpoint, so
    /// this only affects work, never the search tree. starvation_limit 0 =
    /// always strict cheapest-first.
    int starvation_limit = 1;
    int escalation_pops = 32;
    int escalation_rerun_pct = 150;

    static EngineConfig legacy() {
        return {.event_masks = false, .priority_queue = false, .idempotence = false,
                .delta_trail = false, .packed_domains = false};
    }
};

/// Counters describing the work a store (and the search on top of it) did.
struct PropagationStats {
    std::int64_t propagations = 0;  ///< propagator executions
    std::int64_t domain_changes = 0;

    /// Modification events fired, indexed by event kind (MIN, MAX, FIXED,
    /// DOMAIN in bit order). DOMAIN fires on every change.
    std::array<std::int64_t, kNumEventKinds> events{};
    std::int64_t wakeups = 0;           ///< watcher notifications passing the mask
    std::int64_t wakeups_filtered = 0;  ///< notifications dropped by event masks
    std::int64_t self_wakeups_suppressed = 0;  ///< idempotent self-wakeups dropped
    std::int64_t starvation_runs = 0;   ///< escalated runs of a bypassed costlier bucket

    /// Queue pushes per priority bucket and the high-water mark of the
    /// total queued-propagator count.
    std::array<std::int64_t, kNumPriorities> queue_pushes{};
    std::int64_t max_queue_depth = 0;

    std::int64_t trail_saves = 0;      ///< trail records pushed (any kind)
    std::int64_t trail_snapshots = 0;  ///< full Domain snapshots among them
    std::int64_t trail_word_diffs = 0; ///< packed-domain word-diff records among them
    std::int64_t trail_bytes = 0;      ///< payload bytes trailed (snapshots
                                       ///< count their interval storage)
    std::int64_t packed_converts = 0;  ///< interval-to-bitmap representation switches

    /// Accumulate another store's counters (portfolio merge).
    void absorb(const PropagationStats& o);

    /// Export every counter into `m` under `prefix` (e.g. "engine.").
    /// Additive counters add into any existing value, so repeated exports
    /// from several workers sum like absorb(); max_queue_depth max-merges.
    void export_metrics(obs::MetricsRegistry& m, const std::string& prefix) const;
};

/// Per-propagator-class profile: how much work a class of propagators did
/// and what it bought. Filled by a Store with profiling enabled.
struct PropProfile {
    const char* cls = nullptr;  ///< Propagator::class_name() (static string)
    std::int64_t runs = 0;            ///< propagate() executions
    std::int64_t domain_changes = 0;  ///< prunings performed by those runs
    std::int64_t failures = 0;        ///< failures detected by those runs
    std::int64_t time_us = 0;         ///< wall time spent inside propagate()
};

/// Merge `from` into `into` by class name (portfolio merge).
void absorb_prop_profiles(std::vector<PropProfile>& into,
                          const std::vector<PropProfile>& from);

/// Export profiles as "prop.<Class>.runs" / ".domain_changes" / ".failures"
/// / ".time_us" counters (additive across repeated exports).
void export_prop_profile_metrics(const std::vector<PropProfile>& profiles,
                                 obs::MetricsRegistry& m);

class Store {
public:
    Store() = default;
    explicit Store(const EngineConfig& engine) : engine_(engine) {}
    Store(const Store&) = delete;
    Store& operator=(const Store&) = delete;

    const EngineConfig& engine() const { return engine_; }

    // -- variables -----------------------------------------------------------
    IntVar new_var(int lo, int hi, std::string name = {});
    IntVar new_var(Domain dom, std::string name = {});
    BoolVar new_bool(std::string name = {});

    std::size_t num_vars() const { return doms_.size(); }
    const Domain& dom(IntVar x) const { return doms_[check(x)]; }
    const std::string& name(IntVar x) const { return names_[check(x)]; }

    // Bounds/size/fixedness reads come from parallel SoA metadata arrays —
    // one cache line serves the bound queries of many adjacent variables,
    // and no query ever touches the Domain object's representation. The
    // arrays are synced on every domain change and on every trail restore.
    // Bounds of a failed (empty) variable are stale, so min/max keep the
    // non-empty precondition Domain::min()/max() always enforced.
    int min(IntVar x) const {
        const std::size_t i = check(x);
        REVEC_EXPECTS(meta_size_[i] > 0);
        return meta_min_[i];
    }
    int max(IntVar x) const {
        const std::size_t i = check(x);
        REVEC_EXPECTS(meta_size_[i] > 0);
        return meta_max_[i];
    }
    bool fixed(IntVar x) const { return meta_size_[check(x)] == 1; }
    int value(IntVar x) const {
        const std::size_t i = check(x);
        REVEC_EXPECTS(meta_size_[i] == 1);
        return meta_min_[i];
    }
    std::int64_t size(IntVar x) const { return meta_size_[check(x)]; }

    // -- domain modification (propagator + search API) -----------------------
    // Each returns false iff the domain became empty (failure). All record
    // enough trail state that backtracking restores the previous domain
    // bit-exactly. 64-bit bounds outside int range are handled explicitly:
    // requests that cannot affect any representable value are no-ops,
    // requests that exclude every representable value fail.
    bool set_min(IntVar x, std::int64_t v);
    bool set_max(IntVar x, std::int64_t v);
    bool assign(IntVar x, std::int64_t v);
    bool remove(IntVar x, std::int64_t v);
    bool remove_range(IntVar x, std::int64_t lo, std::int64_t hi);
    bool intersect(IntVar x, const Domain& d);

    // -- propagators ----------------------------------------------------------
    /// Take ownership of `p`, subscribe it per `watches` (event-masked),
    /// and schedule it.
    void post(std::unique_ptr<Propagator> p, const std::vector<Watch>& watches);
    /// Convenience overload: subscribe to every event of every watched var.
    void post(std::unique_ptr<Propagator> p, const std::vector<IntVar>& watched);

    /// Run the propagation queue to fixpoint. Returns false on failure.
    bool propagate();

    bool failed() const { return failed_; }

    // -- search support --------------------------------------------------------
    /// Open a new choice level. Returns the new level number.
    int push_level();
    /// Undo all domain changes made since the matching push_level, clear the
    /// failure flag and the propagation queue.
    void pop_level();
    int level() const { return level_; }

    const PropagationStats& stats() const { return stats_; }

    // -- observability ---------------------------------------------------------
    /// Attach a trace buffer; the store emits Node-level instants into it
    /// (currently "escalation" when a bypassed costlier bucket is
    /// interleaved). nullptr (the default) disables emission — each event
    /// site is then a single branch.
    void set_trace(obs::TraceBuffer* trace) { trace_ = trace; }

    /// Start attributing per-propagator work (runs, domain changes,
    /// failures, wall time) to propagator classes. Adds a timer read per
    /// propagator execution; off by default.
    void enable_profiling();
    bool profiling() const { return profile_; }

    /// Profiled work aggregated by Propagator::class_name(), sorted by
    /// class name. Empty when profiling was never enabled.
    std::vector<PropProfile> profile_by_class() const;

    /// Debug helper: render all variables and their domains.
    std::string dump() const;

private:
    /// Bounds-checked index of x. Inline: this sits under every accessor
    /// propagators touch (hundreds of millions of calls per solve), so an
    /// out-of-line definition shows up in profiles.
    std::size_t check(IntVar x) const {
        REVEC_EXPECTS(x.valid() && static_cast<std::size_t>(x.index()) < doms_.size());
        return static_cast<std::size_t>(x.index());
    }
    /// Trail whatever is needed to restore doms_[idx] before mutating it:
    /// Word records for a packed domain under the delta trail, interval
    /// records (Bounds/Min/Max/Snapshot) otherwise. A no-op once the
    /// variable is fully saved for the current level.
    void pre_mutate(std::size_t idx, bool pure_lo_clip, bool pure_hi_clip);
    void record_trail_interval(std::size_t idx, bool pure_lo_clip, bool pure_hi_clip);
    /// Push one Word record per nonzero bitmap word and mark the variable
    /// fully saved for the level.
    void record_trail_words(std::size_t idx, std::span<const std::uint64_t> words);
    /// Refresh the SoA metadata of one variable from its domain.
    void sync_meta(std::size_t idx);
    void on_change(std::size_t idx, int old_min, int old_max, bool was_fixed);
    void schedule(int prop_id);
    int pop_runnable();  ///< next queued propagator id, or -1
    void clear_queue();

    /// One trail record. Bound deltas and word diffs are 16-byte payloads;
    /// Snapshot carries a full pre-mutation Domain (taken only when an
    /// interval-represented domain changes hole structure, or in legacy
    /// mode). Packed domains never take the Min/Max/Bounds paths: their
    /// per-level record stream is word diffs only, so reverse replay never
    /// mixes bitmap restores with interval-storage restores.
    struct TrailEntry {
        enum class Kind : std::uint8_t {
            Min,       ///< undo a pure lower-bound clip; a = old min
            Max,       ///< undo a pure upper-bound clip; a = old max
            Bounds,    ///< reinstate hole-free pre-state [a, b] wholesale
            Snapshot,  ///< reinstate `saved`
            Word,      ///< reinstate bitmap word a to w (packed domains)
        };
        Kind kind;
        std::int32_t var;
        int a = 0;
        int b = 0;
        std::int32_t prev_saved_level = -1;  ///< Bounds/Snapshot/Word: old marker
        Domain saved;                        ///< Snapshot only
        std::uint64_t w = 0;                 ///< Word only: pre-mutation word
    };

    /// One watcher subscription on a variable.
    struct Watcher {
        std::int32_t prop;
        EventMask mask;
    };

    /// FIFO bucket with an amortized O(1) pop-front.
    struct Bucket {
        std::vector<int> q;
        std::size_t head = 0;

        bool empty() const { return head == q.size(); }
        void push(int id) { q.push_back(id); }
        int pop() {
            const int id = q[head++];
            if (head == q.size()) {
                q.clear();
                head = 0;
            }
            return id;
        }
        std::size_t depth() const { return q.size() - head; }
        void clear() {
            q.clear();
            head = 0;
        }
    };

    EngineConfig engine_;

    std::vector<Domain> doms_;
    std::vector<std::string> names_;
    // SoA mirrors of the per-variable metadata propagators read hottest:
    // bounds, size, and representation tag (Domain::Rep), kept in sync with
    // doms_ by sync_meta().
    std::vector<int> meta_min_;
    std::vector<int> meta_max_;
    std::vector<std::int64_t> meta_size_;
    std::vector<std::uint8_t> meta_tag_;
    /// Pre-mutation bitmap capture for intersect's in-place packed path
    /// (the only mutation whose change is known after the fact; mutations
    /// never nest, so one scratch buffer suffices).
    std::vector<std::uint64_t> scratch_words_;
    /// Level of the last trail record batch that restores the variable's
    /// full pre-level state (Bounds, Snapshot, or Word batch); further
    /// records at that level are redundant. -1 = none.
    std::vector<std::int32_t> last_saved_level_;
    std::vector<std::vector<Watcher>> watchers_;

    std::vector<std::unique_ptr<Propagator>> props_;
    std::vector<std::uint8_t> prop_bucket_;  ///< cached priority per propagator
    std::vector<std::uint8_t> prop_idem_;    ///< cached idempotence per propagator
    std::array<Bucket, kNumPriorities> queue_;
    std::size_t queued_count_ = 0;
    int cheap_streak_ = 0;      ///< pops that bypassed a waiting costlier bucket
    std::uint32_t episode_ = 0; ///< propagate() episode id
    std::int64_t organic_pops_ = 0;      ///< non-escalated pops this episode
    std::int64_t episode_distinct_ = 0;  ///< distinct props organically popped
    std::vector<std::uint32_t> prop_run_ep_;  ///< episode a prop last popped in
    std::vector<char> queued_;
    int running_ = -1;  ///< id of the propagator currently executing

    std::vector<TrailEntry> trail_;
    std::vector<std::size_t> level_marks_;
    int level_ = 0;
    bool failed_ = false;

    PropagationStats stats_;

    /// Per-propagator profile slots, indexed by propagator id (sized on
    /// enable_profiling and on post while profiling).
    struct PropCounters {
        std::int64_t runs = 0;
        std::int64_t domain_changes = 0;
        std::int64_t failures = 0;
        std::int64_t time_us = 0;
    };
    bool profile_ = false;
    std::vector<PropCounters> prof_;
    obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace revec::cp
