#include "revec/cp/propagator.hpp"

// Propagator is an interface; the out-of-line key function anchors the
// vtable in this translation unit.
