#include "revec/cp/reified.hpp"

#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// b <-> (x == y), bounds/value reasoning on x,y; full on b.
class ReifiedEqVar final : public Propagator {
public:
    ReifiedEqVar(BoolVar b, IntVar x, IntVar y) : b_(b), x_(x), y_(y) {}

    bool propagate(Store& s) override {
        // Decide b when the relation is entailed/disentailed.
        if (s.fixed(x_) && s.fixed(y_)) {
            return s.assign(b_, s.value(x_) == s.value(y_) ? 1 : 0);
        }
        if (s.max(x_) < s.min(y_) || s.max(y_) < s.min(x_)) {
            return s.assign(b_, 0);
        }
        if (!s.fixed(b_)) return true;
        if (s.value(b_) == 1) {
            // Enforce x == y (bounds + value once one side fixes).
            if (!s.set_min(x_, s.min(y_)) || !s.set_max(x_, s.max(y_))) return false;
            if (!s.set_min(y_, s.min(x_)) || !s.set_max(y_, s.max(x_))) return false;
            if (s.fixed(x_)) return s.assign(y_, s.value(x_));
            if (s.fixed(y_)) return s.assign(x_, s.value(y_));
            return true;
        }
        // b == 0: x != y.
        if (s.fixed(x_)) return s.remove(y_, s.value(x_));
        if (s.fixed(y_)) return s.remove(x_, s.value(y_));
        return true;
    }

    Priority priority() const override { return Priority::Linear; }

    const char* class_name() const override { return "ReifiedEqVar"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "b" << b_.index() << " <-> (x" << x_.index() << " == x" << y_.index() << ")";
        return os.str();
    }

private:
    BoolVar b_;
    IntVar x_;
    IntVar y_;
};

/// b <-> (x == c).
class ReifiedEqConst final : public Propagator {
public:
    ReifiedEqConst(BoolVar b, IntVar x, int c) : b_(b), x_(x), c_(c) {}

    bool propagate(Store& s) override {
        if (!s.dom(x_).contains(c_)) return s.assign(b_, 0);
        if (s.fixed(x_)) return s.assign(b_, 1);  // fixed and contains c => equal
        if (!s.fixed(b_)) return true;
        if (s.value(b_) == 1) return s.assign(x_, c_);
        return s.remove(x_, c_);
    }

    Priority priority() const override { return Priority::Unary; }
    // Every branch re-run on its own output is a no-op (assign/remove of
    // the same constant, entailment checks on unchanged domains).
    bool idempotent() const override { return true; }

    const char* class_name() const override { return "ReifiedEqConst"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "b" << b_.index() << " <-> (x" << x_.index() << " == " << c_ << ")";
        return os.str();
    }

private:
    BoolVar b_;
    IntVar x_;
    int c_;
};

/// At least one literal holds. Unit propagation.
class Clause final : public Propagator {
public:
    explicit Clause(std::vector<Literal> lits) : lits_(std::move(lits)) {
        REVEC_EXPECTS(!lits_.empty());
    }

    bool propagate(Store& s) override {
        int unfixed = 0;
        const Literal* unit = nullptr;
        for (const Literal& lit : lits_) {
            if (s.fixed(lit.var)) {
                const bool holds = (s.value(lit.var) == 1) == lit.positive;
                if (holds) return true;  // clause satisfied
            } else {
                ++unfixed;
                unit = &lit;
            }
        }
        if (unfixed == 0) return false;           // all literals false
        if (unfixed == 1) {                       // unit: force the literal
            return s.assign(unit->var, unit->positive ? 1 : 0);
        }
        return true;
    }

    Priority priority() const override { return Priority::Unary; }
    // Unit propagation satisfies the clause; a rerun sees it satisfied.
    bool idempotent() const override { return true; }

    const char* class_name() const override { return "Clause"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "clause(" << lits_.size() << " lits)";
        return os.str();
    }

private:
    std::vector<Literal> lits_;
};

}  // namespace

void post_reified_eq(Store& store, BoolVar b, IntVar x, IntVar y) {
    store.post(std::make_unique<ReifiedEqVar>(b, x, y), {b, x, y});
}

void post_reified_eq_const(Store& store, BoolVar b, IntVar x, int c) {
    store.post(std::make_unique<ReifiedEqConst>(b, x, c), {b, x});
}

void post_clause(Store& store, std::vector<Literal> lits) {
    std::vector<IntVar> watched;
    watched.reserve(lits.size());
    for (const Literal& lit : lits) watched.push_back(lit.var);
    store.post(std::make_unique<Clause>(std::move(lits)), watched);
}

void post_implies(Store& store, BoolVar a, BoolVar b) {
    post_clause(store, {neg(a), pos(b)});
}

}  // namespace revec::cp
