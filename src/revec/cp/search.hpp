// Depth-first search with chronological backtracking and branch-and-bound
// minimization, plus phase-sequenced variable-selection heuristics. The
// paper's search strategy (§3.5) is a sequence of three phases -- operation
// start times, data start times, memory slots -- each exhausted before the
// next begins; we model that directly as a PhasedBrancher.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"
#include "revec/support/stopwatch.hpp"

namespace revec::cp {

/// Variable-selection heuristic within a phase.
enum class VarSelect {
    InputOrder,   ///< first unfixed variable in phase order
    SmallestMin,  ///< smallest lower bound (good for start times)
    MinDomain,    ///< fewest remaining values (first-fail)
};

/// Value-selection heuristic within a phase.
enum class ValSelect {
    Min,     ///< smallest value
    Max,     ///< largest value
    Median,  ///< middle value of the domain
};

/// One search phase: a set of decision variables and how to branch on them.
struct Phase {
    std::vector<IntVar> vars;
    VarSelect var_select = VarSelect::SmallestMin;
    ValSelect val_select = ValSelect::Min;
    std::string label;
};

/// How the search ended.
enum class SolveStatus {
    Optimal,     ///< search space exhausted; best solution is optimal
    Unsat,       ///< no solution exists
    SatTimeout,  ///< found solution(s) but hit the deadline/limit before proving optimality
    Timeout,     ///< hit the deadline/limit before finding any solution
    /// The exact search found nothing in time, but a heuristic layer above
    /// the solver supplied a verified feasible result (anytime fallback).
    /// Never produced by solve()/satisfy() themselves.
    HeuristicFallback,
};

/// Search configuration.
struct SearchOptions {
    Deadline deadline;                 ///< wall-clock limit
    std::int64_t max_failures = -1;    ///< failure limit, -1 = unlimited
    bool stop_at_first_solution = false;

    /// Cooperative cancellation (portfolio search). When non-null and set,
    /// the search unwinds and returns Timeout/SatTimeout at the next node.
    const std::atomic<bool>* stop = nullptr;

    /// Shared branch-and-bound incumbent (portfolio search). When non-null,
    /// the effective cutoff at every node is min(local incumbent, shared
    /// value), and every local improvement is published back with an atomic
    /// minimum, so one worker's solution immediately prunes all others.
    /// The sentinel value INT64_MAX means "no incumbent yet".
    std::atomic<std::int64_t>* shared_bound = nullptr;

    /// Invoked at every improving solution with the full store assignment
    /// (indexed by IntVar::index()) and the objective value, after the
    /// shared bound is published. The portfolio's LNS workers use it to
    /// obtain incumbent *assignments* (the shared bound alone carries only
    /// the objective). Called on the searching thread; must be cheap and
    /// thread-safe against concurrent callers on other stores. Never
    /// invoked for satisfaction problems (invalid objective).
    std::function<void(const std::vector<int>&, std::int64_t)> on_solution;

    /// Non-zero enables RNG-jittered value selection: with probability 1/4
    /// a uniformly random domain value replaces the heuristic choice.
    /// Completeness is unaffected (the right branch removes the value);
    /// only the order solutions are discovered in changes. Used by
    /// restart-flavored portfolio workers to diversify across restarts.
    std::uint32_t value_jitter_seed = 0;

    /// Trace track this search writes into (also attached to the store for
    /// engine events). nullptr = tracing off; every event site is then one
    /// branch. The search emits "solution"/"bound" instants at Phase level
    /// and "node"/"fail" instants at Node level.
    obs::TraceBuffer* trace = nullptr;
};

/// Search statistics.
struct SearchStats {
    std::int64_t nodes = 0;
    std::int64_t failures = 0;
    std::int64_t solutions = 0;
    std::int64_t cutoff_prunes = 0;  ///< branches cut by the incumbent bound
    std::int64_t restarts = 0;       ///< failure-limited restarts (portfolio)
    double time_ms = 0.0;

    /// Accumulate another worker's counters (portfolio merge). time_ms is
    /// wall-clock, not CPU time, so the caller sets it separately.
    void absorb(const SearchStats& other) {
        nodes += other.nodes;
        failures += other.failures;
        solutions += other.solutions;
        cutoff_prunes += other.cutoff_prunes;
        restarts += other.restarts;
    }

    /// Export every counter into `m` under `prefix` (e.g. "solve.").
    /// Additive counters add into any existing value; time_ms becomes a
    /// gauge (wall clock — last writer wins, matching absorb()).
    void export_metrics(obs::MetricsRegistry& m, const std::string& prefix) const;
};

/// The outcome of a solve: status, statistics, and (when a solution was
/// found) the values of all store variables in the best solution.
struct SolveResult {
    SolveStatus status = SolveStatus::Unsat;
    SearchStats stats;
    PropagationStats prop_stats;  ///< engine counters at the end of the search
    /// Per-propagator-class work attribution; empty unless the store had
    /// profiling enabled (Store::enable_profiling).
    std::vector<PropProfile> prop_profile;
    std::vector<int> best;  ///< indexed by IntVar::index(); empty when no solution

    bool has_solution() const { return !best.empty(); }
    int value_of(IntVar x) const { return best.at(static_cast<std::size_t>(x.index())); }
};

/// Minimize `objective` (or just find a first solution when `objective` is
/// invalid) by DFS branch-and-bound over the given phases.
///
/// Preconditions: the store must be at root level with all constraints
/// posted. Every variable the model requires to be decided must appear in
/// some phase; variables fully determined by propagation need not.
SolveResult solve(Store& store, const std::vector<Phase>& phases, IntVar objective,
                  const SearchOptions& options = {});

/// Convenience: satisfy-only search (first solution).
SolveResult satisfy(Store& store, const std::vector<Phase>& phases,
                    const SearchOptions& options = {});

}  // namespace revec::cp
