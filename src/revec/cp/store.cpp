#include "revec/cp/store.hpp"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstring>
#include <map>
#include <sstream>
#include <string_view>

#include "revec/obs/metrics.hpp"
#include "revec/obs/trace.hpp"
#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// Clamp a 64-bit bound into the int domain value range.
int clamp_value(std::int64_t v) {
    if (v < INT_MIN) return INT_MIN;
    if (v > INT_MAX) return INT_MAX;
    return static_cast<int>(v);
}

/// Approximate trailed payload bytes of a full domain snapshot: the record
/// header plus any heap-resident interval or bitmap storage.
std::int64_t snapshot_bytes(const Domain& d) {
    if (d.packed()) {
        return 16 + static_cast<std::int64_t>(d.packed_words().size()) * 8;
    }
    const auto n = static_cast<std::int64_t>(d.num_intervals());
    return 16 + (n > static_cast<std::int64_t>(Domain::kInlineIvs) ? n * 8 : 0);
}

}  // namespace

void PropagationStats::absorb(const PropagationStats& o) {
    propagations += o.propagations;
    domain_changes += o.domain_changes;
    for (int k = 0; k < kNumEventKinds; ++k) events[static_cast<std::size_t>(k)] +=
        o.events[static_cast<std::size_t>(k)];
    wakeups += o.wakeups;
    wakeups_filtered += o.wakeups_filtered;
    self_wakeups_suppressed += o.self_wakeups_suppressed;
    starvation_runs += o.starvation_runs;
    for (int b = 0; b < kNumPriorities; ++b) queue_pushes[static_cast<std::size_t>(b)] +=
        o.queue_pushes[static_cast<std::size_t>(b)];
    max_queue_depth = std::max(max_queue_depth, o.max_queue_depth);
    trail_saves += o.trail_saves;
    trail_snapshots += o.trail_snapshots;
    trail_word_diffs += o.trail_word_diffs;
    trail_bytes += o.trail_bytes;
    packed_converts += o.packed_converts;
}

void PropagationStats::export_metrics(obs::MetricsRegistry& m,
                                      const std::string& prefix) const {
    m.add(prefix + "propagations", propagations);
    m.add(prefix + "domain_changes", domain_changes);
    static const char* const kEventNames[kNumEventKinds] = {"min", "max", "fixed",
                                                            "domain"};
    for (int k = 0; k < kNumEventKinds; ++k) {
        m.add(prefix + "events." + kEventNames[k], events[static_cast<std::size_t>(k)]);
    }
    m.add(prefix + "wakeups", wakeups);
    m.add(prefix + "wakeups_filtered", wakeups_filtered);
    m.add(prefix + "self_wakeups_suppressed", self_wakeups_suppressed);
    m.add(prefix + "starvation_runs", starvation_runs);
    static const char* const kBucketNames[kNumPriorities] = {"unary", "linear",
                                                             "global"};
    for (int b = 0; b < kNumPriorities; ++b) {
        m.add(prefix + "queue_pushes." + kBucketNames[b],
              queue_pushes[static_cast<std::size_t>(b)]);
    }
    // High-water mark: max-merge against any prior export, matching absorb().
    const std::string depth = prefix + "max_queue_depth";
    m.set(depth, std::max(m.counter(depth), max_queue_depth));
    m.add(prefix + "trail_saves", trail_saves);
    m.add(prefix + "trail_snapshots", trail_snapshots);
    m.add(prefix + "trail_word_diffs", trail_word_diffs);
    m.add(prefix + "trail_bytes", trail_bytes);
    m.add(prefix + "packed_converts", packed_converts);
}

void absorb_prop_profiles(std::vector<PropProfile>& into,
                          const std::vector<PropProfile>& from) {
    for (const PropProfile& p : from) {
        const auto it = std::find_if(into.begin(), into.end(), [&](const PropProfile& q) {
            return std::strcmp(q.cls, p.cls) == 0;
        });
        if (it == into.end()) {
            into.push_back(p);
        } else {
            it->runs += p.runs;
            it->domain_changes += p.domain_changes;
            it->failures += p.failures;
            it->time_us += p.time_us;
        }
    }
    std::sort(into.begin(), into.end(), [](const PropProfile& a, const PropProfile& b) {
        return std::strcmp(a.cls, b.cls) < 0;
    });
}

void export_prop_profile_metrics(const std::vector<PropProfile>& profiles,
                                 obs::MetricsRegistry& m) {
    for (const PropProfile& p : profiles) {
        const std::string prefix = std::string("prop.") + p.cls + ".";
        m.add(prefix + "runs", p.runs);
        m.add(prefix + "domain_changes", p.domain_changes);
        m.add(prefix + "failures", p.failures);
        m.add(prefix + "time_us", p.time_us);
    }
}

IntVar Store::new_var(int lo, int hi, std::string name) {
    return new_var(Domain(lo, hi), std::move(name));
}

IntVar Store::new_var(Domain dom, std::string name) {
    REVEC_EXPECTS(!dom.empty());
    REVEC_EXPECTS(level_ == 0);  // variables are created before search starts
    const auto idx = static_cast<std::int32_t>(doms_.size());
    if (engine_.packed_domains) dom.enable_packing();
    doms_.push_back(std::move(dom));
    if (name.empty()) name = "_v" + std::to_string(idx);
    names_.push_back(std::move(name));
    last_saved_level_.push_back(-1);
    watchers_.emplace_back();
    meta_min_.push_back(0);
    meta_max_.push_back(0);
    meta_size_.push_back(0);
    meta_tag_.push_back(0);
    sync_meta(static_cast<std::size_t>(idx));
    return IntVar(idx);
}

BoolVar Store::new_bool(std::string name) { return new_var(0, 1, std::move(name)); }

void Store::pre_mutate(std::size_t idx, bool pure_lo_clip, bool pure_hi_clip) {
    if (level_ == 0) return;  // root-level changes are permanent
    if (last_saved_level_[idx] == level_) return;  // full restore trailed
    const Domain& d = doms_[idx];
    if (d.packed() && engine_.delta_trail) {
        record_trail_words(idx, d.packed_words());
        return;
    }
    record_trail_interval(idx, pure_lo_clip, pure_hi_clip);
}

void Store::record_trail_words(std::size_t idx,
                               std::span<const std::uint64_t> words) {
    // Word trailing is a batch capture at first touch per level: one
    // 16-byte record per *nonzero* word of the level-entry bitmap, after
    // which the variable is fully saved for the level and every further
    // mutation trails nothing. (Zero words need no record: mutations only
    // clear bits, so a word that is zero at level entry stays zero.)
    const auto var = static_cast<std::int32_t>(idx);
    for (std::size_t k = 0; k < words.size(); ++k) {
        if (words[k] == 0) continue;
        trail_.push_back({TrailEntry::Kind::Word, var, static_cast<int>(k), 0,
                          last_saved_level_[idx], Domain(), words[k]});
        ++stats_.trail_word_diffs;
        stats_.trail_bytes += 16;
    }
    ++stats_.trail_saves;
    last_saved_level_[idx] = level_;
}

void Store::sync_meta(std::size_t idx) {
    const Domain& d = doms_[idx];
    const std::int64_t n = d.size();
    meta_size_[idx] = n;
    meta_tag_[idx] = static_cast<std::uint8_t>(d.rep());
    if (n > 0) {
        meta_min_[idx] = d.min();
        meta_max_[idx] = d.max();
    }
}

void Store::record_trail_interval(std::size_t idx, bool pure_lo_clip,
                                  bool pure_hi_clip) {
    const Domain& d = doms_[idx];
    const auto var = static_cast<std::int32_t>(idx);
    ++stats_.trail_saves;

    if (engine_.delta_trail && !d.packed() && d.is_range()) {
        // Hole-free pre-state: a 16-byte record reinstates it wholesale,
        // whatever the mutation does — this is the dominant case and it
        // also marks the variable fully saved for this level.
        trail_.push_back({TrailEntry::Kind::Bounds, var, d.min(), d.max(),
                          last_saved_level_[idx], Domain()});
        last_saved_level_[idx] = level_;
        stats_.trail_bytes += 12;
        return;
    }
    if (engine_.delta_trail && !d.packed() && (pure_lo_clip || pure_hi_clip)) {
        // Bound clip of a hole-carrying domain: the clipped end interval
        // survives, so restoring its old bound undoes the mutation.
        const auto kind = pure_lo_clip ? TrailEntry::Kind::Min : TrailEntry::Kind::Max;
        const std::size_t mark = level_marks_.back();
        if (trail_.size() > mark && trail_.back().kind == kind && trail_.back().var == var) {
            --stats_.trail_saves;  // adjacent same-kind clip: older record wins
            return;
        }
        trail_.push_back(
            {kind, var, pure_lo_clip ? d.min() : d.max(), 0, -1, Domain()});
        stats_.trail_bytes += 8;
        return;
    }
    // Hole structure changes (or legacy mode, including packed domains when
    // the delta trail is off): full snapshot.
    trail_.push_back({TrailEntry::Kind::Snapshot, var, 0, 0, last_saved_level_[idx], d});
    last_saved_level_[idx] = level_;
    ++stats_.trail_snapshots;
    stats_.trail_bytes += snapshot_bytes(d);
}

void Store::on_change(std::size_t idx, int old_min, int old_max, bool was_fixed) {
    ++stats_.domain_changes;
    const Domain& d = doms_[idx];
    if (d.packed() &&
        meta_tag_[idx] != static_cast<std::uint8_t>(Domain::Rep::Packed)) {
        ++stats_.packed_converts;
    }
    sync_meta(idx);
    if (d.empty()) {
        failed_ = true;
        return;
    }
    EventMask fired = kEventDomain;
    if (d.min() != old_min) fired |= kEventMin;
    if (d.max() != old_max) fired |= kEventMax;
    if (!was_fixed && d.is_fixed()) fired |= kEventFixed;
    for (int k = 0; k < kNumEventKinds; ++k) {
        if (fired & (1u << k)) ++stats_.events[static_cast<std::size_t>(k)];
    }
    // Legacy engines wake every watcher on any change.
    const EventMask effective = engine_.event_masks ? fired : kEventAll;
    for (const Watcher& w : watchers_[idx]) {
        if ((w.mask & effective) == 0) {
            ++stats_.wakeups_filtered;
            continue;
        }
        ++stats_.wakeups;
        schedule(w.prop);
    }
}

void Store::schedule(int prop_id) {
    const auto p = static_cast<std::size_t>(prop_id);
    if (engine_.idempotence && prop_id == running_ && prop_idem_[p] != 0) {
        ++stats_.self_wakeups_suppressed;
        return;
    }
    if (queued_[p]) return;
    queued_[p] = 1;
    const int bucket = engine_.priority_queue ? prop_bucket_[p] : 0;
    queue_[static_cast<std::size_t>(bucket)].push(prop_id);
    ++queued_count_;
    ++stats_.queue_pushes[static_cast<std::size_t>(bucket)];
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, static_cast<std::int64_t>(queued_count_));
}

int Store::pop_runnable() {
    int cheapest = -1;
    int costliest = -1;
    for (int b = 0; b < kNumPriorities; ++b) {
        if (queue_[static_cast<std::size_t>(b)].empty()) continue;
        if (cheapest < 0) cheapest = b;
        costliest = b;
    }
    if (cheapest < 0) return -1;
    // Cheapest-first with escalation: episodes drain in strict priority
    // order (waking watchers coalesce while a costlier propagator waits)
    // unless chain-creep detection currently holds — a long episode of
    // one-shot pops — in which case the costliest waiting bucket is
    // interleaved every starvation_limit pops (see
    // EngineConfig::starvation_limit).
    int pick = cheapest;
    const bool creeping =
        engine_.starvation_limit > 0 && organic_pops_ >= engine_.escalation_pops &&
        organic_pops_ * 100 <= episode_distinct_ * engine_.escalation_rerun_pct;
    if (cheapest == costliest) {
        cheap_streak_ = 0;
    } else if (creeping && cheap_streak_ >= engine_.starvation_limit) {
        cheap_streak_ = 0;
        pick = costliest;
        ++stats_.starvation_runs;
        obs::instant(trace_, obs::TraceLevel::Node, "escalation", "bucket", pick);
    } else {
        ++cheap_streak_;
    }
    --queued_count_;
    const int id = queue_[static_cast<std::size_t>(pick)].pop();
    if (pick == cheapest) {
        ++organic_pops_;
        if (prop_run_ep_[static_cast<std::size_t>(id)] != episode_) {
            prop_run_ep_[static_cast<std::size_t>(id)] = episode_;
            ++episode_distinct_;
        }
    }
    return id;
}

void Store::clear_queue() {
    for (Bucket& b : queue_) {
        while (!b.empty()) queued_[static_cast<std::size_t>(b.pop())] = 0;
        b.clear();
    }
    queued_count_ = 0;
    cheap_streak_ = 0;
}

bool Store::set_min(IntVar x, std::int64_t v) {
    if (failed_) return false;
    if (v > INT_MAX) {
        failed_ = true;
        return false;
    }
    if (v <= INT_MIN) return true;  // cannot exclude any representable value
    const std::size_t i = check(x);
    Domain& d = doms_[i];
    const int vv = static_cast<int>(v);
    if (d.min() >= vv) return true;
    const int old_min = d.min();
    const int old_max = d.max();
    const bool was_fixed = d.is_fixed();
    // Pure clip iff the first interval survives (keeps some value >= vv);
    // irrelevant for packed domains, which trail word records instead.
    const bool pure_lo = !d.packed() && vv <= d.intervals()[0].hi;
    pre_mutate(i, pure_lo, false);
    d.remove_below(vv);
    on_change(i, old_min, old_max, was_fixed);
    return !failed_;
}

bool Store::set_max(IntVar x, std::int64_t v) {
    if (failed_) return false;
    if (v < INT_MIN) {
        failed_ = true;
        return false;
    }
    if (v >= INT_MAX) return true;
    const std::size_t i = check(x);
    Domain& d = doms_[i];
    const int vv = static_cast<int>(v);
    if (d.max() <= vv) return true;
    const int old_min = d.min();
    const int old_max = d.max();
    const bool was_fixed = d.is_fixed();
    const bool pure_hi = !d.packed() && vv >= d.intervals()[d.num_intervals() - 1].lo;
    pre_mutate(i, false, pure_hi);
    d.remove_above(vv);
    on_change(i, old_min, old_max, was_fixed);
    return !failed_;
}

bool Store::assign(IntVar x, std::int64_t v) {
    if (failed_) return false;
    const std::size_t i = check(x);
    Domain& d = doms_[i];
    if (v < INT_MIN || v > INT_MAX || !d.contains(static_cast<int>(v))) {
        failed_ = true;
        return false;
    }
    if (d.is_fixed()) return true;
    const int old_min = d.min();
    const int old_max = d.max();
    pre_mutate(i, false, false);
    d.assign(static_cast<int>(v));
    on_change(i, old_min, old_max, /*was_fixed=*/false);
    return !failed_;
}

bool Store::remove(IntVar x, std::int64_t v) {
    if (failed_) return false;
    if (v < INT_MIN || v > INT_MAX) return true;
    return remove_range(x, v, v);
}

bool Store::remove_range(IntVar x, std::int64_t lo, std::int64_t hi) {
    if (failed_) return false;
    if (lo > hi || hi < INT_MIN || lo > INT_MAX) return true;  // no representable value
    const std::size_t i = check(x);
    Domain& d = doms_[i];
    const int l = clamp_value(lo);
    const int h = clamp_value(hi);
    if (!d.intersects_range(l, h)) return true;
    const int old_min = d.min();
    const int old_max = d.max();
    const bool was_fixed = d.is_fixed();
    // Edge-touching removals are pure clips (Domain routes them through
    // remove_below/remove_above), so interval domains keep compact records.
    const bool pure_lo = !d.packed() && l <= old_min && h < old_max &&
                         h >= d.intervals()[0].lo && h < d.intervals()[0].hi;
    const bool pure_hi = !d.packed() && h >= old_max && l > old_min &&
                         l <= d.intervals()[d.num_intervals() - 1].hi &&
                         l > d.intervals()[d.num_intervals() - 1].lo;
    pre_mutate(i, pure_lo, pure_hi);
    d.remove_range(l, h);
    on_change(i, old_min, old_max, was_fixed);
    return !failed_;
}

bool Store::intersect(IntVar x, const Domain& nd) {
    if (failed_) return false;
    const std::size_t i = check(x);
    Domain& d = doms_[i];
    if (d.packed() && engine_.delta_trail) {
        // In-place path: no pre-mutation Domain copy. Whether the intersect
        // changes anything is only known afterwards, so the bitmap is
        // captured into scratch first and trailed only on change — a no-op
        // intersect leaves the trail untouched.
        const int old_min = d.min();
        const int old_max = d.max();
        const bool was_fixed = d.is_fixed();
        const bool save = level_ > 0 && last_saved_level_[i] != level_;
        if (save) {
            const auto words = d.packed_words();
            scratch_words_.assign(words.begin(), words.end());
        }
        if (!d.intersect_with(nd)) return true;
        if (save) record_trail_words(i, scratch_words_);
        on_change(i, old_min, old_max, was_fixed);
        return !failed_;
    }
    Domain tmp = d;
    if (!tmp.intersect_with(nd)) return true;
    const int old_min = d.min();
    const int old_max = d.max();
    const bool was_fixed = d.is_fixed();
    pre_mutate(i, false, false);  // must see the pre-mutation state
    d = std::move(tmp);
    on_change(i, old_min, old_max, was_fixed);
    return !failed_;
}

void Store::post(std::unique_ptr<Propagator> p, const std::vector<Watch>& watches) {
    REVEC_EXPECTS(p != nullptr);
    const int id = static_cast<int>(props_.size());
    p->id_ = id;
    auto bucket = static_cast<std::uint8_t>(p->priority());
    REVEC_EXPECTS(bucket < kNumPriorities);
    prop_bucket_.push_back(bucket);
    prop_idem_.push_back(p->idempotent() ? 1 : 0);
    props_.push_back(std::move(p));
    queued_.push_back(0);
    prop_run_ep_.push_back(0);
    if (profile_) prof_.resize(props_.size());
    for (const Watch& w : watches) {
        auto& list = watchers_[check(w.var)];
        const auto it = std::find_if(list.begin(), list.end(),
                                     [id](const Watcher& e) { return e.prop == id; });
        if (it == list.end()) {
            list.push_back({id, w.events});
        } else {
            it->mask |= w.events;  // duplicate watch: union of the masks
        }
    }
    schedule(id);
}

void Store::post(std::unique_ptr<Propagator> p, const std::vector<IntVar>& watched) {
    std::vector<Watch> ws;
    ws.reserve(watched.size());
    for (const IntVar x : watched) ws.push_back({x, kEventAll});
    post(std::move(p), ws);
}

bool Store::propagate() {
    ++episode_;
    cheap_streak_ = 0;
    organic_pops_ = 0;
    episode_distinct_ = 0;
    while (!failed_) {
        const int id = pop_runnable();
        if (id < 0) break;
        queued_[static_cast<std::size_t>(id)] = 0;
        ++stats_.propagations;
        running_ = id;
        bool ok;
        if (profile_) {
            // Attribute this run's work to the propagator: prunings as the
            // delta of the global change counter, wall time around the call,
            // failure whether it was detected directly (ok == false) or via
            // a domain wipe-out (failed_; the loop guard keeps it false on
            // entry).
            PropCounters& pc = prof_[static_cast<std::size_t>(id)];
            const std::int64_t changes_before = stats_.domain_changes;
            const auto t0 = std::chrono::steady_clock::now();
            ok = props_[static_cast<std::size_t>(id)]->propagate(*this);
            pc.time_us += std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            ++pc.runs;
            pc.domain_changes += stats_.domain_changes - changes_before;
            if (!ok || failed_) ++pc.failures;
        } else {
            ok = props_[static_cast<std::size_t>(id)]->propagate(*this);
        }
        running_ = -1;
        if (!ok) {
            failed_ = true;
            break;
        }
    }
    if (failed_) {
        clear_queue();
        return false;
    }
    return true;
}

void Store::enable_profiling() {
    profile_ = true;
    prof_.resize(props_.size());
}

std::vector<PropProfile> Store::profile_by_class() const {
    // Aggregate per-id counters by class name; std::map keys give the
    // sorted-by-class output order directly.
    std::map<std::string_view, PropProfile> by_class;
    for (std::size_t id = 0; id < prof_.size(); ++id) {
        const PropCounters& pc = prof_[id];
        const char* cls = props_[id]->class_name();
        PropProfile& agg = by_class[cls];
        agg.cls = cls;
        agg.runs += pc.runs;
        agg.domain_changes += pc.domain_changes;
        agg.failures += pc.failures;
        agg.time_us += pc.time_us;
    }
    std::vector<PropProfile> out;
    out.reserve(by_class.size());
    for (const auto& [cls, p] : by_class) out.push_back(p);
    return out;
}

int Store::push_level() {
    level_marks_.push_back(trail_.size());
    return ++level_;
}

void Store::pop_level() {
    REVEC_EXPECTS(level_ > 0);
    const std::size_t mark = level_marks_.back();
    level_marks_.pop_back();
    while (trail_.size() > mark) {
        TrailEntry& e = trail_.back();
        const auto idx = static_cast<std::size_t>(e.var);
        switch (e.kind) {
            case TrailEntry::Kind::Min:
                doms_[idx].restore_lo(e.a);
                break;
            case TrailEntry::Kind::Max:
                doms_[idx].restore_hi(e.a);
                break;
            case TrailEntry::Kind::Bounds:
                doms_[idx].restore_single(e.a, e.b);
                last_saved_level_[idx] = e.prev_saved_level;
                break;
            case TrailEntry::Kind::Snapshot:
                doms_[idx] = std::move(e.saved);
                last_saved_level_[idx] = e.prev_saved_level;
                break;
            case TrailEntry::Kind::Word:
                doms_[idx].restore_word(static_cast<std::uint32_t>(e.a), e.w);
                last_saved_level_[idx] = e.prev_saved_level;
                break;
        }
        sync_meta(idx);
        trail_.pop_back();
    }
    --level_;
    failed_ = false;
    clear_queue();
}

std::string Store::dump() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < doms_.size(); ++i) {
        os << names_[i] << " :: " << doms_[i].to_string() << '\n';
    }
    return os.str();
}

}  // namespace revec::cp
