#include "revec/cp/store.hpp"

#include <algorithm>
#include <climits>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// Clamp a 64-bit bound into the int domain value range.
int clamp_value(std::int64_t v) {
    if (v < INT_MIN) return INT_MIN;
    if (v > INT_MAX) return INT_MAX;
    return static_cast<int>(v);
}

}  // namespace

IntVar Store::new_var(int lo, int hi, std::string name) {
    return new_var(Domain(lo, hi), std::move(name));
}

IntVar Store::new_var(Domain dom, std::string name) {
    REVEC_EXPECTS(!dom.empty());
    REVEC_EXPECTS(level_ == 0);  // variables are created before search starts
    const auto idx = static_cast<std::int32_t>(doms_.size());
    doms_.push_back(std::move(dom));
    if (name.empty()) name = "_v" + std::to_string(idx);
    names_.push_back(std::move(name));
    last_saved_level_.push_back(-1);
    watchers_.emplace_back();
    return IntVar(idx);
}

BoolVar Store::new_bool(std::string name) { return new_var(0, 1, std::move(name)); }

std::size_t Store::check(IntVar x) const {
    REVEC_EXPECTS(x.valid() && static_cast<std::size_t>(x.index()) < doms_.size());
    return static_cast<std::size_t>(x.index());
}

void Store::save_domain(std::size_t idx) {
    if (level_ == 0) return;  // root-level changes are permanent
    if (last_saved_level_[idx] == level_) return;
    trail_.push_back({static_cast<std::int32_t>(idx), last_saved_level_[idx], doms_[idx]});
    last_saved_level_[idx] = level_;
}

void Store::on_change(std::size_t idx) {
    ++stats_.domain_changes;
    if (doms_[idx].empty()) {
        failed_ = true;
        return;
    }
    for (const int p : watchers_[idx]) schedule(p);
}

void Store::schedule(int prop_id) {
    if (queued_[static_cast<std::size_t>(prop_id)]) return;
    queued_[static_cast<std::size_t>(prop_id)] = 1;
    queue_.push_back(prop_id);
}

#define REVEC_STORE_MUTATE(idx, op)          \
    do {                                     \
        if (failed_) return false;           \
        const std::size_t i_ = (idx);        \
        Domain tmp_ = doms_[i_];             \
        if (!tmp_.op) return true;           \
        save_domain(i_);                     \
        doms_[i_] = std::move(tmp_);         \
        on_change(i_);                       \
        return !failed_;                     \
    } while (false)

bool Store::set_min(IntVar x, std::int64_t v) {
    if (v > INT_MAX) {
        failed_ = true;
        return false;
    }
    if (v <= INT_MIN) return !failed_;
    REVEC_STORE_MUTATE(check(x), remove_below(clamp_value(v)));
}

bool Store::set_max(IntVar x, std::int64_t v) {
    if (v < INT_MIN) {
        failed_ = true;
        return false;
    }
    if (v >= INT_MAX) return !failed_;
    REVEC_STORE_MUTATE(check(x), remove_above(clamp_value(v)));
}

bool Store::assign(IntVar x, std::int64_t v) {
    if (failed_) return false;
    const std::size_t i = check(x);
    if (v < INT_MIN || v > INT_MAX || !doms_[i].contains(static_cast<int>(v))) {
        failed_ = true;
        return false;
    }
    Domain tmp = doms_[i];
    if (!tmp.assign(static_cast<int>(v))) return true;
    save_domain(i);
    doms_[i] = std::move(tmp);
    on_change(i);
    return !failed_;
}

bool Store::remove(IntVar x, std::int64_t v) {
    if (v < INT_MIN || v > INT_MAX) return !failed_;
    REVEC_STORE_MUTATE(check(x), remove_value(static_cast<int>(v)));
}

bool Store::remove_range(IntVar x, std::int64_t lo, std::int64_t hi) {
    if (lo > hi) return !failed_;
    const int l = clamp_value(lo);
    const int h = clamp_value(hi);
    REVEC_STORE_MUTATE(check(x), remove_range(l, h));
}

bool Store::intersect(IntVar x, const Domain& d) {
    REVEC_STORE_MUTATE(check(x), intersect_with(d));
}

#undef REVEC_STORE_MUTATE

void Store::post(std::unique_ptr<Propagator> p, const std::vector<IntVar>& watched) {
    REVEC_EXPECTS(p != nullptr);
    const int id = static_cast<int>(props_.size());
    p->id_ = id;
    props_.push_back(std::move(p));
    queued_.push_back(0);
    for (const IntVar x : watched) {
        auto& list = watchers_[check(x)];
        if (std::find(list.begin(), list.end(), id) == list.end()) list.push_back(id);
    }
    schedule(id);
}

bool Store::propagate() {
    while (!queue_.empty()) {
        if (failed_) break;
        const int id = queue_.front();
        queue_.pop_front();
        queued_[static_cast<std::size_t>(id)] = 0;
        ++stats_.propagations;
        if (!props_[static_cast<std::size_t>(id)]->propagate(*this)) {
            failed_ = true;
            break;
        }
    }
    if (failed_) {
        for (const int id : queue_) queued_[static_cast<std::size_t>(id)] = 0;
        queue_.clear();
        return false;
    }
    return true;
}

int Store::push_level() {
    level_marks_.push_back(trail_.size());
    return ++level_;
}

void Store::pop_level() {
    REVEC_EXPECTS(level_ > 0);
    const std::size_t mark = level_marks_.back();
    level_marks_.pop_back();
    while (trail_.size() > mark) {
        TrailEntry& e = trail_.back();
        const auto idx = static_cast<std::size_t>(e.var);
        doms_[idx] = std::move(e.saved);
        last_saved_level_[idx] = e.prev_saved_level;
        trail_.pop_back();
    }
    --level_;
    failed_ = false;
    for (const int id : queue_) queued_[static_cast<std::size_t>(id)] = 0;
    queue_.clear();
}

std::string Store::dump() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < doms_.size(); ++i) {
        os << names_[i] << " :: " << doms_[i].to_string() << '\n';
    }
    return os.str();
}

}  // namespace revec::cp
