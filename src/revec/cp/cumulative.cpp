#include "revec/cp/cumulative.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// Time-table propagation: build the profile of compulsory parts
/// (the interval [max(start), min(start)+duration) each task must occupy),
/// fail if it exceeds capacity, and prune start times that would push any
/// task over capacity against the profile of the *other* tasks.
class Cumulative final : public Propagator {
public:
    static int dur_min(const Store& s, const CumulTask& t) {
        return t.dur_var.valid() ? s.min(t.dur_var) : t.duration;
    }

    Cumulative(std::vector<CumulTask> tasks, int capacity)
        : tasks_(std::move(tasks)), cap_(capacity) {
        REVEC_EXPECTS(cap_ >= 0);
        for (const CumulTask& t : tasks_) {
            REVEC_EXPECTS(t.dur_var.valid() || t.duration > 0);
            REVEC_EXPECTS(t.demand >= 0);
        }
    }

    bool propagate(Store& s) override {
        // Profile as a difference map over event points: profile changes by
        // +demand at cp_begin and -demand at cp_end of each compulsory part.
        std::map<int, int> delta;
        for (const CumulTask& t : tasks_) {
            if (t.demand == 0) continue;
            const int cp_begin = s.max(t.start);
            const int cp_end = s.min(t.start) + dur_min(s, t);
            if (cp_begin < cp_end) {
                delta[cp_begin] += t.demand;
                delta[cp_end] -= t.demand;
            }
        }

        // Materialize as step segments [from, to) -> height.
        struct Segment {
            int from;
            int to;
            int height;
        };
        std::vector<Segment> profile;
        int height = 0;
        int prev = 0;
        bool open = false;
        for (const auto& [at, d] : delta) {
            if (open && height > 0 && prev < at) profile.push_back({prev, at, height});
            height += d;
            if (height > cap_) return false;
            prev = at;
            open = true;
        }

        if (profile.empty()) return true;

        // Prune: for each task and each profile segment that together with
        // the task's demand would exceed capacity, forbid start times that
        // overlap the segment — unless the overlap is (part of) the task's
        // own compulsory part.
        for (const CumulTask& t : tasks_) {
            if (t.demand == 0) continue;
            const int own_begin = s.max(t.start);
            const int d_min = dur_min(s, t);
            const int own_end = s.min(t.start) + d_min;
            const bool has_cp = own_begin < own_end;
            for (const Segment& seg : profile) {
                // Contribution of this task's own compulsory part to `seg`:
                // the profile is built from *all* tasks, so subtract self
                // where the segment lies inside the own compulsory part.
                int seg_height = seg.height;
                if (has_cp && seg.from >= own_begin && seg.to <= own_end) {
                    seg_height -= t.demand;
                }
                if (seg_height + t.demand <= cap_) continue;
                if (d_min == 0) continue;  // a possibly-empty task occupies nothing
                // Starts in [seg.from - d_min + 1, seg.to - 1] overlap seg for
                // every duration >= d_min.
                if (!s.remove_range(t.start, seg.from - d_min + 1, seg.to - 1)) {
                    return false;
                }
            }
        }
        return true;
    }

    std::string describe() const override {
        std::ostringstream os;
        os << "cumulative(" << tasks_.size() << " tasks, cap=" << cap_ << ")";
        return os.str();
    }

private:
    std::vector<CumulTask> tasks_;
    int cap_;
};

}  // namespace

void post_cumulative(Store& store, std::vector<CumulTask> tasks, int capacity) {
    std::vector<IntVar> watched;
    watched.reserve(tasks.size() * 2);
    for (const CumulTask& t : tasks) {
        watched.push_back(t.start);
        if (t.dur_var.valid()) watched.push_back(t.dur_var);
    }
    store.post(std::make_unique<Cumulative>(std::move(tasks), capacity), watched);
}

}  // namespace revec::cp
