#include "revec/cp/cumulative.hpp"

#include <algorithm>
#include <utility>
#include <vector>
#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// Time-table propagation: build the profile of compulsory parts
/// (the interval [max(start), min(start)+duration) each task must occupy),
/// fail if it exceeds capacity, and prune start times that would push any
/// task over capacity against the profile of the *other* tasks.
class Cumulative final : public Propagator {
public:
    static int dur_min(const Store& s, const CumulTask& t) {
        return t.dur_var.valid() ? s.min(t.dur_var) : t.duration;
    }

    Cumulative(std::vector<CumulTask> tasks, int capacity)
        : tasks_(std::move(tasks)), cap_(capacity) {
        REVEC_EXPECTS(cap_ >= 0);
        for (const CumulTask& t : tasks_) {
            REVEC_EXPECTS(t.dur_var.valid() || t.duration > 0);
            REVEC_EXPECTS(t.demand >= 0);
        }
    }

    bool propagate(Store& s) override {
        // Profile as a difference list over event points: +demand at
        // cp_begin, -demand at cp_end of each compulsory part. Sorted member
        // scratch instead of a per-run std::map: this propagator executes
        // millions of times per search, so per-run allocation dominates.
        events_.clear();
        for (const CumulTask& t : tasks_) {
            if (t.demand == 0) continue;
            const int cp_begin = s.max(t.start);
            const int cp_end = s.min(t.start) + dur_min(s, t);
            if (cp_begin < cp_end) {
                events_.push_back({cp_begin, t.demand});
                events_.push_back({cp_end, -t.demand});
            }
        }
        std::sort(events_.begin(), events_.end());

        // Materialize as step segments [from, to) -> height, summing all
        // deltas at one event point before the capacity check (the same
        // merge a difference map would perform).
        profile_.clear();
        int height = 0;
        int prev = 0;
        bool open = false;
        for (std::size_t k = 0; k < events_.size();) {
            const int at = events_[k].first;
            int d = 0;
            for (; k < events_.size() && events_[k].first == at; ++k) {
                d += events_[k].second;
            }
            if (open && height > 0 && prev < at) profile_.push_back({prev, at, height});
            height += d;
            if (height > cap_) return false;
            prev = at;
            open = true;
        }

        if (profile_.empty()) return true;

        // Prune: for each task and each profile segment that together with
        // the task's demand would exceed capacity, forbid start times that
        // overlap the segment — unless the overlap is (part of) the task's
        // own compulsory part.
        for (const CumulTask& t : tasks_) {
            if (t.demand == 0) continue;
            const int own_begin = s.max(t.start);
            const int d_min = dur_min(s, t);
            const int own_end = s.min(t.start) + d_min;
            const bool has_cp = own_begin < own_end;
            for (const Segment& seg : profile_) {
                // Contribution of this task's own compulsory part to `seg`:
                // the profile is built from *all* tasks, so subtract self
                // where the segment lies inside the own compulsory part.
                int seg_height = seg.height;
                if (has_cp && seg.from >= own_begin && seg.to <= own_end) {
                    seg_height -= t.demand;
                }
                if (seg_height + t.demand <= cap_) continue;
                if (d_min == 0) continue;  // a possibly-empty task occupies nothing
                // Starts in [seg.from - d_min + 1, seg.to - 1] overlap seg for
                // every duration >= d_min.
                if (!s.remove_range(t.start, seg.from - d_min + 1, seg.to - 1)) {
                    return false;
                }
            }
        }
        return true;
    }

    Priority priority() const override { return Priority::Global; }

    const char* class_name() const override { return "Cumulative"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "cumulative(" << tasks_.size() << " tasks, cap=" << cap_ << ")";
        return os.str();
    }

private:
    struct Segment {
        int from;
        int to;
        int height;
    };

    std::vector<CumulTask> tasks_;
    int cap_;
    std::vector<std::pair<int, int>> events_;  ///< per-run scratch: (time, ±demand)
    std::vector<Segment> profile_;             ///< per-run scratch
};

}  // namespace

void post_cumulative(Store& store, std::vector<CumulTask> tasks, int capacity) {
    // Time-table reasoning reads start bounds and the duration minimum;
    // interior holes in a start domain never move a compulsory part.
    std::vector<Watch> watches;
    watches.reserve(tasks.size() * 2);
    for (const CumulTask& t : tasks) {
        watches.push_back({t.start, kEventBounds});
        if (t.dur_var.valid()) watches.push_back({t.dur_var, kEventMin});
    }
    store.post(std::make_unique<Cumulative>(std::move(tasks), capacity), watches);
}

}  // namespace revec::cp
