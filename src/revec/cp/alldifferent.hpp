// AllDifferent global constraint with bound-consistent Hall-interval
// reasoning plus value propagation on assigned variables. A natural
// redundant constraint for memory-slot assignment of simultaneously-live
// data, and a standard part of the FD kernel.
#pragma once

#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// Post pairwise-distinct over the variables.
void post_all_different(Store& store, std::vector<IntVar> vars);

}  // namespace revec::cp
