#include "revec/cp/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#include "revec/obs/trace.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/rng.hpp"
#include "revec/support/stopwatch.hpp"

namespace revec::cp {

namespace {

constexpr std::int64_t kNoBound = std::numeric_limits<std::int64_t>::max();

/// Rewrite the builder's phases according to one diversification row.
std::vector<Phase> apply_config(std::vector<Phase> phases, const WorkerConfig& cfg) {
    if (cfg.flatten_phases) {
        Phase all;
        for (const Phase& p : phases) {
            all.vars.insert(all.vars.end(), p.vars.begin(), p.vars.end());
        }
        all.var_select = cfg.var_select;
        all.val_select = cfg.val_select;
        all.label = "flat";
        return {all};
    }
    if (!cfg.keep_phase_heuristics) {
        for (Phase& p : phases) {
            p.var_select = cfg.var_select;
            p.val_select = cfg.val_select;
        }
    }
    return phases;
}

struct WorkerSlot {
    WorkerReport report;
    std::vector<int> best;  ///< best assignment across restarts
    std::exception_ptr error;
};

/// The shared incumbent *assignment* (the atomic bound carries only the
/// objective). CP workers publish every improving solution here through the
/// on_solution hook; LNS workers snapshot it, relax a neighbourhood, and
/// publish accepted repairs back. Only allocated when lns_workers > 0.
struct SharedIncumbent {
    std::mutex mu;
    std::vector<int> best;
    std::int64_t objective = kNoBound;
};

/// One portfolio worker: rebuild the model, run the (possibly restarting)
/// DFS against the shared bound, and fill `slot`.
void run_worker(const ModelBuilder& build, const WorkerConfig& cfg,
                const SearchOptions& base, const RestartPolicy& policy,
                const EngineConfig& engine, bool profile, obs::TraceBuffer* trace,
                std::int64_t trace_rid, std::atomic<bool>& stop,
                std::atomic<std::int64_t>& shared, SharedIncumbent* incumbent,
                WorkerSlot& slot) {
    try {
        // The rid payload only appears for service-correlated solves, so
        // standalone traces stay byte-identical with rid plumbing in place.
        obs::SpanScope worker_span(trace, obs::TraceLevel::Phase, "worker",
                                   trace_rid != 0 ? "rid" : nullptr, trace_rid);
        Store store{engine};
        if (profile) store.enable_profiling();
        const PostedModel model = build(store);
        const std::vector<Phase> phases = apply_config(model.phases, cfg);

        SearchOptions opts = base;
        opts.stop = &stop;
        opts.shared_bound = model.objective.valid() ? &shared : nullptr;
        opts.value_jitter_seed = cfg.jitter_seed;
        opts.trace = trace;
        if (incumbent != nullptr && model.objective.valid()) {
            opts.on_solution = [incumbent](const std::vector<int>& a, std::int64_t obj) {
                const std::lock_guard<std::mutex> lock(incumbent->mu);
                if (obj < incumbent->objective) {
                    incumbent->objective = obj;
                    incumbent->best = a;
                }
            };
        }

        XorShift reseed(cfg.jitter_seed == 0 ? 0x7f4a7c15u : cfg.jitter_seed);
        std::int64_t restart_limit = cfg.restarts ? policy.initial_failures : -1;
        std::int64_t local_best = kNoBound;

        while (true) {
            // Per-solve failure budget: the restart limit, clipped so the
            // caller's overall per-worker limit is still honored.
            std::int64_t limit = restart_limit;
            if (base.max_failures >= 0) {
                const std::int64_t remaining =
                    std::max<std::int64_t>(0, base.max_failures - slot.report.stats.failures);
                limit = limit < 0 ? remaining : std::min(limit, remaining);
            }
            opts.max_failures = limit;

            const SolveResult r = solve(store, phases, model.objective, opts);
            slot.report.stats.absorb(r.stats);
            slot.report.status = r.status;
            if (r.has_solution()) {
                const std::int64_t obj =
                    model.objective.valid() ? r.value_of(model.objective) : 0;
                if (slot.best.empty() || obj < local_best) {
                    slot.best = r.best;
                    local_best = obj;
                    slot.report.best_objective = obj;
                }
            }

            if (r.status == SolveStatus::Optimal || r.status == SolveStatus::Unsat) {
                // Genuine exhaustion of the bound-pruned tree: with any
                // incumbent (ours or shared) this proves global optimality.
                slot.report.proved = true;
                break;
            }
            // Timeout / SatTimeout: cancelled, out of wall clock, out of the
            // caller's failure budget, or (restart workers) out of the
            // per-restart failure limit. Only the last one restarts.
            if (stop.load(std::memory_order_relaxed) || base.deadline.expired()) break;
            if (base.max_failures >= 0 &&
                slot.report.stats.failures > base.max_failures) {
                break;
            }
            if (restart_limit < 0) break;
            ++slot.report.stats.restarts;
            obs::instant(trace, obs::TraceLevel::Phase, "restart", "limit",
                         restart_limit);
            restart_limit =
                static_cast<std::int64_t>(static_cast<double>(restart_limit) * policy.growth) +
                1;
            opts.value_jitter_seed = reseed.next() | 1u;
        }
        slot.report.prop_stats = store.stats();
        if (profile) slot.report.prop_profile = store.profile_by_class();
        worker_span.result("nodes", slot.report.stats.nodes, "proved",
                           slot.report.proved ? 1 : 0);
        if (slot.report.proved) stop.store(true, std::memory_order_release);
    } catch (...) {
        slot.error = std::current_exception();
        stop.store(true, std::memory_order_release);
    }
}

/// Once every CP worker has returned, this many consecutive non-improving
/// rounds end an LNS worker — otherwise a deadline-free portfolio whose CP
/// workers ran out of failure budget would spin forever.
constexpr std::int64_t kLnsIdleLimit = 16;

/// One LNS worker: loop { snapshot incumbent, run one lns_round, publish
/// accepted improvements through the shared bound + incumbent }. Never sets
/// `proved` — LNS only improves, proofs come from CP workers.
void run_lns_worker(const LnsRoundFn& round, int lns_index, std::uint32_t seed,
                    const SearchOptions& base, obs::TraceBuffer* trace,
                    std::int64_t trace_rid, std::atomic<bool>& stop,
                    std::atomic<std::int64_t>& shared, SharedIncumbent& incumbent,
                    const std::atomic<int>& cp_active, WorkerSlot& slot) {
    try {
        obs::SpanScope worker_span(trace, obs::TraceLevel::Phase, "worker",
                                   trace_rid != 0 ? "rid" : nullptr, trace_rid);
        XorShift rng(seed);
        std::int64_t idle = 0;
        int round_no = 0;
        while (!stop.load(std::memory_order_relaxed) && !base.deadline.expired()) {
            std::vector<int> snapshot;
            std::int64_t snapshot_obj = kNoBound;
            {
                const std::lock_guard<std::mutex> lock(incumbent.mu);
                snapshot = incumbent.best;
                snapshot_obj = incumbent.objective;
            }
            if (snapshot.empty()) {
                // Cold start without a seed assignment: wait for some CP
                // worker's first solution; give up when none can come.
                if (cp_active.load(std::memory_order_acquire) == 0) break;
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                continue;
            }
            LnsRoundContext ctx;
            ctx.incumbent = &snapshot;
            ctx.objective = snapshot_obj;
            ctx.seed = rng.next() | 1u;
            ctx.worker = lns_index;
            ctx.round = round_no++;
            ctx.deadline = base.deadline;
            ctx.stop = &stop;
            ctx.trace = trace;
            ctx.trace_rid = trace_rid;
            const LnsRoundResult r = round(ctx);
            ++slot.report.lns_rounds;
            slot.report.stats.absorb(r.stats);

            bool accepted = false;
            if (r.improved && !r.assignment.empty() && r.objective < snapshot_obj) {
                const std::lock_guard<std::mutex> lock(incumbent.mu);
                if (r.objective < incumbent.objective) {
                    incumbent.objective = r.objective;
                    incumbent.best = r.assignment;
                    accepted = true;
                }
            }
            if (accepted) {
                ++slot.report.lns_accepted;
                idle = 0;
                slot.best = r.assignment;
                slot.report.best_objective = r.objective;
                slot.report.status = SolveStatus::SatTimeout;
                // Publish through the shared bound so every CP worker prunes
                // against the LNS incumbent from its next node on.
                std::int64_t cur = shared.load(std::memory_order_relaxed);
                while (r.objective < cur &&
                       !shared.compare_exchange_weak(cur, r.objective,
                                                     std::memory_order_relaxed)) {
                }
                obs::instant(trace, obs::TraceLevel::Phase, "bound", "obj", r.objective);
            } else {
                ++slot.report.lns_rejected;
                ++idle;
                if (cp_active.load(std::memory_order_acquire) == 0 &&
                    idle >= kLnsIdleLimit) {
                    break;
                }
            }
        }
        worker_span.result("rounds", slot.report.lns_rounds, "accepted",
                           slot.report.lns_accepted);
    } catch (...) {
        slot.error = std::current_exception();
        stop.store(true, std::memory_order_release);
    }
}

}  // namespace

WorkerConfig diversified_config(int k, std::uint32_t seed, const RestartPolicy& policy) {
    REVEC_EXPECTS(k >= 0);
    WorkerConfig c;
    if (k == 0) {
        // The paper's own heuristics; bit-compatible with the sequential
        // solver so a 1-thread portfolio matches its node counts exactly.
        c.label = "baseline";
        return c;
    }
    XorShift rng(seed + 0x9e3779b9u * static_cast<std::uint32_t>(k));
    switch ((k - 1) % 6) {
        case 0:
            c.var_select = VarSelect::MinDomain;
            c.val_select = ValSelect::Min;
            c.keep_phase_heuristics = false;
            c.label = "first-fail/min";
            break;
        case 1:
            c.var_select = VarSelect::SmallestMin;
            c.val_select = ValSelect::Median;
            c.keep_phase_heuristics = false;
            c.label = "smallest-min/median";
            break;
        case 2:
            c.var_select = VarSelect::MinDomain;
            c.val_select = ValSelect::Min;
            c.keep_phase_heuristics = false;
            c.flatten_phases = true;
            c.label = "flat/first-fail";
            break;
        case 3:
            c.restarts = policy.enabled;
            c.jitter_seed = rng.next() | 1u;
            c.label = "baseline/restart-jitter";
            break;
        case 4:
            c.var_select = VarSelect::InputOrder;
            c.val_select = ValSelect::Min;
            c.keep_phase_heuristics = false;
            c.label = "input-order/min";
            break;
        case 5:
            c.var_select = VarSelect::MinDomain;
            c.val_select = ValSelect::Median;
            c.keep_phase_heuristics = false;
            c.restarts = policy.enabled;
            c.jitter_seed = rng.next() | 1u;
            c.label = "first-fail/median/restart";
            break;
    }
    if (k > 6) {
        // Fleets past one full table cycle get fresh jitter for diversity.
        c.jitter_seed = rng.next() | 1u;
        c.label += "#" + std::to_string(k);
    }
    return c;
}

SolveResult PortfolioResult::to_solve_result() const {
    SolveResult r;
    r.status = status;
    r.stats = stats;
    r.prop_stats = prop_stats;
    r.prop_profile = prop_profile;
    r.best = best;
    return r;
}

PortfolioResult solve_portfolio(const ModelBuilder& build, const SolverConfig& config,
                                const SearchOptions& options) {
    REVEC_EXPECTS(config.threads >= 1);
    REVEC_EXPECTS(config.lns_workers >= 0);
    REVEC_EXPECTS(config.lns_workers == 0 || config.lns_round != nullptr);
    REVEC_EXPECTS(options.stop == nullptr && options.shared_bound == nullptr &&
                  options.on_solution == nullptr);
    Stopwatch watch;

    const int n = config.threads;
    const int lns = config.lns_workers;
    const int total = n + lns;
    std::atomic<bool> stop{false};
    // Warm start: a seeded incumbent makes every worker search strictly
    // better objectives only. An exhausted search with no solution then
    // reports Unsat, which the caller reads as "the seed was optimal".
    std::atomic<std::int64_t> shared{config.initial_incumbent};
    // CP workers still running — LNS workers stop once no CP worker is left
    // to feed them fresh incumbents and rounds stop paying off.
    std::atomic<int> cp_active{n};
    SharedIncumbent incumbent;
    if (lns > 0 && config.initial_incumbent != kNoBound &&
        !config.lns_seed_assignment.empty()) {
        incumbent.best = config.lns_seed_assignment;
        incumbent.objective = config.initial_incumbent;
    }

    std::vector<WorkerConfig> cfgs;
    cfgs.reserve(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
        cfgs.push_back(diversified_config(k, config.seed, config.restart_policy));
    }
    std::vector<WorkerSlot> slots(static_cast<std::size_t>(total));

    // Register one trace track per worker up front (on this thread, in
    // worker order, CP workers then LNS workers) so the serialized track
    // order is deterministic whatever the thread scheduling does.
    std::vector<obs::TraceBuffer*> tracks(static_cast<std::size_t>(total), nullptr);
    if (config.trace != nullptr) {
        for (int k = 0; k < n; ++k) {
            tracks[static_cast<std::size_t>(k)] =
                config.trace->new_track("worker-" + std::to_string(k) + " (" +
                                        cfgs[static_cast<std::size_t>(k)].label + ")");
        }
        for (int j = 0; j < lns; ++j) {
            tracks[static_cast<std::size_t>(n + j)] =
                config.trace->new_track("lns-" + std::to_string(j));
        }
    }

    SharedIncumbent* const inc = lns > 0 ? &incumbent : nullptr;
    if (total == 1) {
        run_worker(build, cfgs[0], options, config.restart_policy, config.engine,
                   config.profile, tracks[0], config.trace_rid, stop, shared, inc,
                   slots[0]);
        cp_active.store(0, std::memory_order_release);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(total));
        for (int k = 0; k < n; ++k) {
            threads.emplace_back([&, k] {
                run_worker(build, cfgs[static_cast<std::size_t>(k)], options,
                           config.restart_policy, config.engine, config.profile,
                           tracks[static_cast<std::size_t>(k)], config.trace_rid, stop,
                           shared, inc, slots[static_cast<std::size_t>(k)]);
                cp_active.fetch_sub(1, std::memory_order_release);
            });
        }
        XorShift lns_seeds(config.seed ^ 0x1a5beadu);
        for (int j = 0; j < lns; ++j) {
            const std::uint32_t seed = lns_seeds.next() | 1u;
            threads.emplace_back([&, j, seed] {
                run_lns_worker(config.lns_round, j, seed, options,
                               tracks[static_cast<std::size_t>(n + j)], config.trace_rid,
                               stop, shared, incumbent, cp_active,
                               slots[static_cast<std::size_t>(n + j)]);
            });
        }
        for (std::thread& t : threads) t.join();
    }

    for (const WorkerSlot& slot : slots) {
        if (slot.error) std::rethrow_exception(slot.error);
    }

    PortfolioResult out;
    bool any_proof = false;
    std::int64_t best_obj = kNoBound;
    for (int k = 0; k < total; ++k) {
        WorkerSlot& slot = slots[static_cast<std::size_t>(k)];
        slot.report.config_index = k;
        if (k < n) {
            slot.report.label = cfgs[static_cast<std::size_t>(k)].label;
        } else {
            slot.report.label = "lns-" + std::to_string(k - n);
            slot.report.is_lns = true;
        }
        out.stats.absorb(slot.report.stats);
        out.prop_stats.absorb(slot.report.prop_stats);
        absorb_prop_profiles(out.prop_profile, slot.report.prop_profile);
        any_proof = any_proof || slot.report.proved;
        // Deterministic merge: best objective first, then lowest config
        // index (strict < keeps the earlier worker on ties).
        if (!slot.best.empty() && slot.report.best_objective < best_obj) {
            best_obj = slot.report.best_objective;
            out.best = slot.best;
            out.winner = k;
        }
        out.workers.push_back(slot.report);
    }
    out.status = any_proof
                     ? (out.has_solution() ? SolveStatus::Optimal : SolveStatus::Unsat)
                     : (out.has_solution() ? SolveStatus::SatTimeout : SolveStatus::Timeout);

    // Canonical replay: thread timing decides which worker first reports the
    // optimal objective, so the *assignment* above can differ run to run
    // even though the objective cannot. Re-derive it deterministically with
    // the baseline configuration under the proven bound. (LNS workers make
    // even a 1-CP-thread portfolio timing-dependent, hence `total`.)
    if (config.canonical_replay && total > 1 && out.status == SolveStatus::Optimal &&
        out.has_solution()) {
        obs::TraceBuffer* const main_track =
            config.trace != nullptr ? config.trace->main() : nullptr;
        obs::SpanScope replay_span(main_track, obs::TraceLevel::Phase,
                                   "canonical_replay");
        Store store{config.engine};
        if (config.profile) store.enable_profiling();
        const PostedModel model = build(store);
        if (model.objective.valid() && store.set_max(model.objective, best_obj)) {
            SearchOptions replay_opts;
            replay_opts.deadline = options.deadline;
            replay_opts.stop_at_first_solution = true;
            replay_opts.trace = main_track;
            const SolveResult replay = solve(store, model.phases, model.objective, replay_opts);
            out.stats.absorb(replay.stats);
            out.prop_stats.absorb(replay.prop_stats);
            absorb_prop_profiles(out.prop_profile, replay.prop_profile);
            replay_span.result("nodes", replay.stats.nodes);
            if (replay.has_solution() && replay.value_of(model.objective) == best_obj) {
                out.best = replay.best;
            }
        }
    }

    out.stats.time_ms = watch.elapsed_ms();
    return out;
}

}  // namespace revec::cp
