// Lightweight handles to variables owned by a Store.
#pragma once

#include <cstdint>

namespace revec::cp {

/// Handle to a finite-domain integer variable. Cheap to copy; only valid for
/// the Store that created it.
class IntVar {
public:
    IntVar() = default;
    explicit IntVar(std::int32_t index) : index_(index) {}

    std::int32_t index() const { return index_; }
    bool valid() const { return index_ >= 0; }

    friend bool operator==(IntVar, IntVar) = default;

private:
    std::int32_t index_ = -1;
};

/// A 0/1 variable; by convention created with domain {0,1}.
using BoolVar = IntVar;

}  // namespace revec::cp
