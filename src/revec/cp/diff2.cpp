#include "revec/cp/diff2.hpp"

#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// Pairwise constructive-disjunction propagation. For each ordered pair the
/// four escape relations are
///   L: i left of j   (x_i + len_i <= x_j)
///   R: j left of i   (x_j + len_j <= x_i)
///   B: i below j     (y_i + h_i <= y_j)
///   A: j below i     (y_j + h_j <= y_i)
/// plus "i or j is empty" (len 0). If only one relation stays feasible under
/// the current bounds it is enforced with bounds propagation; if none stays
/// feasible the constraint fails.
class Diff2 final : public Propagator {
public:
    explicit Diff2(std::vector<Rect> rects) : rects_(std::move(rects)) {
        for (const Rect& r : rects_) REVEC_EXPECTS(r.len_y >= 0);
    }

    bool propagate(Store& s) override {
        for (std::size_t i = 0; i + 1 < rects_.size(); ++i) {
            for (std::size_t j = i + 1; j < rects_.size(); ++j) {
                if (!prune_pair(s, rects_[i], rects_[j])) return false;
            }
        }
        return true;
    }

    Priority priority() const override { return Priority::Global; }

    const char* class_name() const override { return "Diff2"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "diff2(" << rects_.size() << " rects)";
        return os.str();
    }

private:
    // Feasibility of "a left of b" under current bounds: min(x_a)+min(len_a)
    // <= max(x_b) must be satisfiable.
    static bool left_feasible(const Store& s, const Rect& a, const Rect& b) {
        return static_cast<std::int64_t>(s.min(a.x)) + s.min(a.len_x) <= s.max(b.x);
    }

    static bool below_feasible(const Store& s, const Rect& a, const Rect& b) {
        return static_cast<std::int64_t>(s.min(a.y)) + a.len_y <= s.max(b.y);
    }

    // Enforce x_a + len_a <= x_b with bounds propagation.
    static bool enforce_left(Store& s, const Rect& a, const Rect& b) {
        if (!s.set_min(b.x, static_cast<std::int64_t>(s.min(a.x)) + s.min(a.len_x))) return false;
        if (!s.set_max(a.x, static_cast<std::int64_t>(s.max(b.x)) - s.min(a.len_x))) return false;
        return s.set_max(a.len_x, static_cast<std::int64_t>(s.max(b.x)) - s.min(a.x));
    }

    static bool enforce_below(Store& s, const Rect& a, const Rect& b) {
        if (!s.set_min(b.y, static_cast<std::int64_t>(s.min(a.y)) + a.len_y)) return false;
        return s.set_max(a.y, static_cast<std::int64_t>(s.max(b.y)) - a.len_y);
    }

    static bool prune_pair(Store& s, const Rect& a, const Rect& b) {
        // A rectangle that may be empty (len 0) can always escape overlap.
        if (s.min(a.len_x) == 0 || s.min(b.len_x) == 0 || a.len_y == 0 || b.len_y == 0) {
            return true;
        }
        const bool can_l = left_feasible(s, a, b);
        const bool can_r = left_feasible(s, b, a);
        const bool can_b = below_feasible(s, a, b);
        const bool can_a = below_feasible(s, b, a);
        const int feasible = int(can_l) + int(can_r) + int(can_b) + int(can_a);
        if (feasible == 0) return false;
        if (feasible > 1) return true;
        if (can_l) return enforce_left(s, a, b);
        if (can_r) return enforce_left(s, b, a);
        if (can_b) return enforce_below(s, a, b);
        return enforce_below(s, b, a);
    }

    std::vector<Rect> rects_;
};

}  // namespace

void post_diff2(Store& store, std::vector<Rect> rects) {
    // Constructive disjunction over bounds; of a length variable only the
    // minimum is ever read (set_max on it does not re-read its max).
    std::vector<Watch> watches;
    watches.reserve(rects.size() * 3);
    for (const Rect& r : rects) {
        watches.push_back({r.x, kEventBounds});
        watches.push_back({r.y, kEventBounds});
        watches.push_back({r.len_x, kEventMin});
    }
    store.post(std::make_unique<Diff2>(std::move(rects)), watches);
}

}  // namespace revec::cp
