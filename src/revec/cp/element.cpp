#include "revec/cp/element.hpp"

#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// result == array[index] with variable entries. Index values without a
/// compatible entry are pruned; the result is confined to the union of the
/// candidate entries' hulls; once the index fixes, entry and result are
/// channelled both ways.
class Element final : public Propagator {
public:
    Element(IntVar index, std::vector<IntVar> array, IntVar result)
        : index_(index), array_(std::move(array)), result_(result) {
        REVEC_EXPECTS(!array_.empty());
    }

    bool propagate(Store& s) override {
        if (!s.set_min(index_, 0)) return false;
        if (!s.set_max(index_, static_cast<int>(array_.size()) - 1)) return false;

        // Prune index values whose entry cannot equal the result, and
        // accumulate the hull of the surviving candidates. Dead indices
        // coalesce into maximal runs (merging across holes already absent
        // from the domain) so each run is one batched remove_range instead
        // of a per-value remove.
        std::int64_t lo = INT64_MAX;
        std::int64_t hi = INT64_MIN;
        std::vector<Interval> dead;
        bool prev_dead = false;
        s.dom(index_).for_each_run([&](int rlo, int rhi) {
            for (int i = rlo;; ++i) {
                const IntVar entry = array_[static_cast<std::size_t>(i)];
                const bool compatible =
                    s.min(entry) <= s.max(result_) && s.min(result_) <= s.max(entry);
                if (!compatible) {
                    if (prev_dead) {
                        dead.back().hi = i;
                    } else {
                        dead.push_back({i, i});
                    }
                    prev_dead = true;
                } else {
                    prev_dead = false;
                    lo = std::min<std::int64_t>(lo, s.min(entry));
                    hi = std::max<std::int64_t>(hi, s.max(entry));
                }
                if (i == rhi) break;
            }
        });
        for (const Interval& r : dead) {
            if (!s.remove_range(index_, r.lo, r.hi)) return false;
        }
        if (lo > hi) return false;  // no candidate left
        if (!s.set_min(result_, lo) || !s.set_max(result_, hi)) return false;

        if (s.fixed(index_)) {
            const IntVar entry = array_[static_cast<std::size_t>(s.value(index_))];
            if (!s.set_min(entry, s.min(result_)) || !s.set_max(entry, s.max(result_))) {
                return false;
            }
            if (!s.set_min(result_, s.min(entry)) || !s.set_max(result_, s.max(entry))) {
                return false;
            }
            if (!s.intersect(result_, s.dom(entry))) return false;
            if (!s.intersect(entry, s.dom(result_))) return false;
        }
        return true;
    }

    // Hole-sensitive on every side (index enumeration, domain channeling
    // once the index fixes), so it keeps the wake-on-any-change mask.
    Priority priority() const override { return Priority::Linear; }

    const char* class_name() const override { return "Element"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "element(x" << index_.index() << " of " << array_.size() << ")";
        return os.str();
    }

private:
    IntVar index_;
    std::vector<IntVar> array_;
    IntVar result_;
};

}  // namespace

void post_element(Store& store, IntVar index, std::vector<IntVar> array, IntVar result) {
    std::vector<IntVar> watched = array;
    watched.push_back(index);
    watched.push_back(result);
    store.post(std::make_unique<Element>(index, std::move(array), result), watched);
}

void post_element_const(Store& store, IntVar index, std::vector<int> values, IntVar result) {
    REVEC_EXPECTS(!values.empty());
    std::vector<IntVar> array;
    array.reserve(values.size());
    for (const int v : values) array.push_back(store.new_var(v, v));
    post_element(store, index, std::move(array), result);
}

}  // namespace revec::cp
