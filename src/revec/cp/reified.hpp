// Reification machinery: boolean views of equalities, and clauses over
// boolean variables. Together these express the paper's conditional memory
// rules (eqs. 7-9):  s_i = s_j  =>  (page_d = page_e => line_d = line_e)
// as the clause  !(s_i=s_j) \/ !(page_d=page_e) \/ (line_d=line_e).
#pragma once

#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// A boolean literal: a BoolVar, possibly negated.
struct Literal {
    BoolVar var;
    bool positive = true;
};

inline Literal pos(BoolVar b) { return {b, true}; }
inline Literal neg(BoolVar b) { return {b, false}; }

/// Post b <-> (x == y).
void post_reified_eq(Store& store, BoolVar b, IntVar x, IntVar y);

/// Post b <-> (x == c).
void post_reified_eq_const(Store& store, BoolVar b, IntVar x, int c);

/// Post the disjunction of the literals (at least one must hold).
void post_clause(Store& store, std::vector<Literal> lits);

/// Post a -> b for booleans.
void post_implies(Store& store, BoolVar a, BoolVar b);

}  // namespace revec::cp
