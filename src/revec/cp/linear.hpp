// Linear arithmetic propagators: sum a_i*x_i <= c, sum a_i*x_i == c, and
// the disequality x != y + c. Bounds-consistent.
#pragma once

#include <memory>
#include <vector>

#include "revec/cp/propagator.hpp"
#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// One term of a linear expression.
struct LinTerm {
    std::int64_t coeff;
    IntVar var;
};

/// Post sum(terms) <= c.
void post_linear_leq(Store& store, std::vector<LinTerm> terms, std::int64_t c);

/// Post sum(terms) == c.
void post_linear_eq(Store& store, std::vector<LinTerm> terms, std::int64_t c);

/// Post x + c <= y  (precedence form).
void post_leq_offset(Store& store, IntVar x, std::int64_t c, IntVar y);

/// Post y == x + c.
void post_eq_offset(Store& store, IntVar x, std::int64_t c, IntVar y);

/// Post x != y + c.
void post_not_equal(Store& store, IntVar x, IntVar y, std::int64_t c = 0);

/// Post x != v for a constant v (applied immediately; no propagator).
void post_not_value(Store& store, IntVar x, std::int64_t v);

}  // namespace revec::cp
