// Counting constraints over boolean variables, used by the
// reconfiguration-aware modulo scheduling model (number of configuration
// changes around the steady-state kernel).
#pragma once

#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// Post total == sum(bools). Specialized counting propagator (cheaper than a
/// general linear equality: it tracks fixed-1 and fixed-0 counts).
void post_bool_sum(Store& store, std::vector<BoolVar> bools, IntVar total);

}  // namespace revec::cp
