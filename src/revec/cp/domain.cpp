#include "revec/cp/domain.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

/// Set bits [lo, hi] in a bitmap whose bit 0 is `base` (base 64-aligned,
/// lo/hi within the bitmap).
void set_bits(std::uint64_t* w, std::int64_t base, std::int64_t lo, std::int64_t hi) {
    const std::size_t wl = static_cast<std::size_t>((lo - base) >> 6);
    const std::size_t wh = static_cast<std::size_t>((hi - base) >> 6);
    const std::uint64_t ml = ~std::uint64_t{0} << ((lo - base) & 63);
    const std::uint64_t mh = ~std::uint64_t{0} >> (63 - ((hi - base) & 63));
    if (wl == wh) {
        w[wl] |= ml & mh;
        return;
    }
    w[wl] |= ml;
    for (std::size_t k = wl + 1; k < wh; ++k) w[k] = ~std::uint64_t{0};
    w[wh] |= mh;
}

}  // namespace

/// Scratch interval list for rebuild-style mutations. Output with at most
/// kInlineIvs intervals stays on the stack; longer lists spill into a
/// vector. adopt() moves the result into a Domain without re-copying the
/// spilled storage.
struct Domain::Builder {
    Interval buf[kInlineIvs];
    std::vector<Interval> spill;
    std::uint32_t n = 0;
    std::int64_t total = 0;  ///< value count across pushed intervals

    void push(Interval iv) {
        total += static_cast<std::int64_t>(iv.hi) - iv.lo + 1;
        if (n < kInlineIvs) {
            buf[n] = iv;
        } else {
            if (n == kInlineIvs) spill.assign(buf, buf + kInlineIvs);
            spill.push_back(iv);
        }
        ++n;
    }

    /// Structural comparison against an interval-representation domain.
    bool equals(const Domain& d) const {
        REVEC_ASSERT(!d.packed_);
        if (n != d.n_) return false;
        const Interval* mine = n <= kInlineIvs ? buf : spill.data();
        const Interval* theirs = d.data();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!(mine[i] == theirs[i])) return false;
        }
        return true;
    }
};

void Domain::adopt(Builder&& b) {
    n_ = b.n;
    if (n_ <= kInlineIvs) {
        for (std::uint32_t i = 0; i < n_; ++i) small_[i] = b.buf[i];
        big_.clear();
    } else {
        big_ = std::move(b.spill);
    }
    nvals_ = b.total;
}

void Domain::drop_front(std::uint32_t k) {
    if (k == 0) return;
    REVEC_ASSERT(k <= n_);
    const std::uint32_t left = n_ - k;
    if (n_ > kInlineIvs) {
        if (left <= kInlineIvs) {
            for (std::uint32_t i = 0; i < left; ++i) small_[i] = big_[k + i];
            big_.clear();
        } else {
            big_.erase(big_.begin(), big_.begin() + static_cast<std::ptrdiff_t>(k));
        }
    } else {
        for (std::uint32_t i = 0; i < left; ++i) small_[i] = small_[k + i];
    }
    n_ = left;
}

void Domain::drop_back(std::uint32_t k) {
    if (k == 0) return;
    REVEC_ASSERT(k <= n_);
    const std::uint32_t left = n_ - k;
    if (n_ > kInlineIvs && left <= kInlineIvs) {
        for (std::uint32_t i = 0; i < left; ++i) small_[i] = big_[i];
        big_.clear();
    } else if (n_ > kInlineIvs) {
        big_.resize(left);
    }
    n_ = left;
}

Domain::Domain(int lo, int hi) {
    if (lo <= hi) {
        small_[0] = {lo, hi};
        n_ = 1;
        nvals_ = static_cast<std::int64_t>(hi) - lo + 1;
    }
}

Domain Domain::of_values(std::vector<int> values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    Domain d;
    Builder b;
    for (const int v : values) {
        if (b.n > 0) {
            Interval& last = b.n <= kInlineIvs ? b.buf[b.n - 1] : b.spill.back();
            if (static_cast<std::int64_t>(last.hi) + 1 == v) {
                last.hi = v;
                b.total += 1;
                continue;
            }
        }
        b.push({v, v});
    }
    d.adopt(std::move(b));
    return d;
}

void Domain::enable_packing() {
    pack_ok_ = true;
    maybe_pack();
}

void Domain::maybe_pack() {
    if (!pack_ok_ || packed_ || n_ <= 1) return;
    const std::int64_t lo = data()[0].lo;
    const std::int64_t hi = data()[n_ - 1].hi;
    // Two's-complement AND with ~63 floors toward -inf, so the base stays
    // 64-aligned for negative bounds too.
    const std::int64_t base = lo & ~std::int64_t{63};
    const std::int64_t words = ((hi - base) >> 6) + 1;
    if (words > static_cast<std::int64_t>(kPackedMaxWords)) return;
    words_.assign(static_cast<std::size_t>(words), 0);
    for (std::uint32_t i = 0; i < n_; ++i) {
        const Interval iv = data()[i];
        set_bits(words_.data(), base, iv.lo, iv.hi);
    }
    base_ = base;
    pmin_ = static_cast<int>(lo);
    pmax_ = static_cast<int>(hi);
    packed_ = true;
    n_ = 0;
    big_.clear();
}

void Domain::clear_to_empty() {
    if (packed_) {
        // Keep the packed representation (all-zero words) so a trailed
        // word-diff restore can rebuild the pre-failure bitmap in place.
        std::fill(words_.begin(), words_.end(), 0);
        nvals_ = 0;
        return;
    }
    n_ = 0;
    big_.clear();
    nvals_ = 0;
}

int Domain::packed_next_set(std::int64_t from) const {
    std::size_t w = word_of(from);
    std::uint64_t cur = words_[w] & (~std::uint64_t{0} << ((from - base_) & 63));
    while (cur == 0) cur = words_[++w];
    return static_cast<int>(base_ + static_cast<std::int64_t>(w) * 64 +
                            std::countr_zero(cur));
}

std::int64_t Domain::packed_next_clear(std::int64_t from) const {
    std::size_t w = word_of(from);
    std::uint64_t cur = ~words_[w] & (~std::uint64_t{0} << ((from - base_) & 63));
    while (cur == 0) {
        if (++w == words_.size()) return packed_end();
        cur = ~words_[w];
    }
    return base_ + static_cast<std::int64_t>(w) * 64 + std::countr_zero(cur);
}

void Domain::packed_rescan_min(std::int64_t from) { pmin_ = packed_next_set(from); }

void Domain::packed_rescan_max(std::int64_t from) {
    std::size_t w = word_of(from);
    std::uint64_t cur = words_[w] & (~std::uint64_t{0} >> (63 - ((from - base_) & 63)));
    while (cur == 0) cur = words_[--w];
    pmax_ = static_cast<int>(base_ + static_cast<std::int64_t>(w) * 64 + 63 -
                             std::countl_zero(cur));
}

void Domain::restore_word(std::uint32_t widx, std::uint64_t old) {
    std::uint64_t& w = words_[widx];
    const bool was_empty = nvals_ == 0;
    nvals_ += std::popcount(old) - std::popcount(w);
    w = old;
    // `old` is non-zero: word records are only pushed for words that held
    // bits at level entry (zero words cannot regain bits mid-level).
    const std::int64_t word_base = base_ + static_cast<std::int64_t>(widx) * 64;
    const int wlo = static_cast<int>(word_base + std::countr_zero(old));
    const int whi = static_cast<int>(word_base + 63 - std::countl_zero(old));
    if (was_empty) {
        pmin_ = wlo;
        pmax_ = whi;
    } else {
        pmin_ = std::min(pmin_, wlo);
        pmax_ = std::max(pmax_, whi);
    }
}

std::size_t Domain::num_intervals() const {
    if (!packed_) return n_;
    // A run starts at every set bit whose predecessor bit is clear.
    std::size_t runs = 0;
    std::uint64_t prev_msb = 0;
    for (const std::uint64_t w : words_) {
        runs += static_cast<std::size_t>(std::popcount(w & ~((w << 1) | prev_msb)));
        prev_msb = w >> 63;
    }
    return runs;
}

int Domain::min() const {
    REVEC_EXPECTS(!empty());
    return packed_ ? pmin_ : data()[0].lo;
}

int Domain::max() const {
    REVEC_EXPECTS(!empty());
    return packed_ ? pmax_ : data()[n_ - 1].hi;
}

int Domain::value() const {
    REVEC_EXPECTS(is_fixed());
    return packed_ ? pmin_ : data()[0].lo;
}

bool Domain::contains(int v) const {
    if (packed_) {
        if (empty() || v < pmin_ || v > pmax_) return false;
        return (words_[word_of(v)] & bit_of(v)) != 0;
    }
    const std::span<const Interval> ivs = intervals();
    // Binary search over intervals by lower bound.
    auto it = std::upper_bound(ivs.begin(), ivs.end(), v,
                               [](int x, const Interval& iv) { return x < iv.lo; });
    if (it == ivs.begin()) return false;
    --it;
    return v <= it->hi;
}

bool Domain::intersects_range(int lo, int hi) const {
    REVEC_EXPECTS(lo <= hi);
    if (packed_) {
        if (empty() || hi < pmin_ || lo > pmax_) return false;
        if (lo <= pmin_) return true;
        return packed_next_set(lo) <= hi;
    }
    for (const Interval& iv : intervals()) {
        if (iv.hi < lo) continue;
        return iv.lo <= hi;
    }
    return false;
}

bool Domain::next_value(int v, int& out) const {
    if (packed_) {
        if (empty() || v > pmax_) return false;
        out = v <= pmin_ ? pmin_ : packed_next_set(v);
        return true;
    }
    for (const Interval& iv : intervals()) {
        if (iv.hi < v) continue;
        out = std::max(iv.lo, v);
        return true;
    }
    return false;
}

bool Domain::next_run(int from, Interval& out) const {
    if (packed_) {
        if (empty() || from > pmax_) return false;
        const std::int64_t start = from <= pmin_ ? pmin_ : packed_next_set(from);
        const std::int64_t end = packed_next_clear(start) - 1;
        out.lo = static_cast<int>(start);
        out.hi = static_cast<int>(std::min<std::int64_t>(end, pmax_));
        return true;
    }
    const std::span<const Interval> ivs = intervals();
    auto it = std::lower_bound(ivs.begin(), ivs.end(), from,
                               [](const Interval& iv, int x) { return iv.hi < x; });
    if (it == ivs.end()) return false;
    out.lo = std::max(it->lo, from);
    out.hi = it->hi;
    return true;
}

std::span<const Interval> Domain::intervals() const {
    REVEC_EXPECTS(!packed_);
    return {data(), n_};
}

bool Domain::remove_below(int v) {
    if (empty() || min() >= v) return false;
    if (packed_) {
        if (v > pmax_) {
            clear_to_empty();
            return true;
        }
        const std::size_t wv = word_of(v);
        std::int64_t removed = 0;
        for (std::size_t k = word_of(pmin_); k < wv; ++k) {
            removed += std::popcount(words_[k]);
            words_[k] = 0;
        }
        const std::uint64_t keep = ~std::uint64_t{0} << ((v - base_) & 63);
        removed += std::popcount(words_[wv] & ~keep);
        words_[wv] &= keep;
        nvals_ -= removed;
        packed_rescan_min(v);
        return true;
    }
    const Interval* d = data();
    std::uint32_t keep = 0;
    std::int64_t removed = 0;
    while (keep < n_ && d[keep].hi < v) {
        removed += static_cast<std::int64_t>(d[keep].hi) - d[keep].lo + 1;
        ++keep;
    }
    drop_front(keep);
    if (n_ > 0 && data()[0].lo < v) {
        removed += static_cast<std::int64_t>(v) - data()[0].lo;
        data()[0].lo = v;
    }
    nvals_ -= removed;
    // No repack here even if the clip shrank the span into the packed
    // budget: pure clips may be trailed as compact Min/Max records whose
    // restore writes into interval storage, so representation conversion
    // is reserved for the rebuild paths (interior remove_range,
    // intersect_with), which are always trailed as full-restore records.
    return true;
}

bool Domain::remove_above(int v) {
    if (empty() || max() <= v) return false;
    if (packed_) {
        if (v < pmin_) {
            clear_to_empty();
            return true;
        }
        const std::size_t wv = word_of(v);
        const std::size_t wmax = word_of(pmax_);
        std::int64_t removed = 0;
        for (std::size_t k = wv + 1; k <= wmax; ++k) {
            removed += std::popcount(words_[k]);
            words_[k] = 0;
        }
        const std::uint64_t keep = ~std::uint64_t{0} >> (63 - ((v - base_) & 63));
        removed += std::popcount(words_[wv] & ~keep);
        words_[wv] &= keep;
        nvals_ -= removed;
        packed_rescan_max(v);
        return true;
    }
    const Interval* d = data();
    std::uint32_t drop = 0;
    std::int64_t removed = 0;
    while (drop < n_ && d[n_ - 1 - drop].lo > v) {
        removed += static_cast<std::int64_t>(d[n_ - 1 - drop].hi) - d[n_ - 1 - drop].lo + 1;
        ++drop;
    }
    drop_back(drop);
    if (n_ > 0 && data()[n_ - 1].hi > v) {
        removed += static_cast<std::int64_t>(data()[n_ - 1].hi) - v;
        data()[n_ - 1].hi = v;
    }
    nvals_ -= removed;
    // See remove_below: clips never repack.
    return true;
}

bool Domain::remove_value(int v) { return remove_range(v, v); }

bool Domain::remove_range(int lo, int hi) {
    if (lo > hi || empty() || hi < min() || lo > max()) return false;
    // Route edge-touching removals through the clip paths so pure bound
    // tightenings never rebuild interval storage; the +/-1 cannot overflow
    // because the opposite bound strictly survives.
    if (lo <= min() && hi >= max()) {
        clear_to_empty();
        return true;
    }
    if (lo <= min()) return remove_below(hi + 1);
    if (hi >= max()) return remove_above(lo - 1);
    // Strictly interior removal: min < lo <= hi < max.
    if (packed_) {
        const std::size_t wl = word_of(lo);
        const std::size_t wh = word_of(hi);
        const std::uint64_t ml = ~std::uint64_t{0} << ((lo - base_) & 63);
        const std::uint64_t mh = ~std::uint64_t{0} >> (63 - ((hi - base_) & 63));
        std::int64_t removed = 0;
        if (wl == wh) {
            const std::uint64_t m = ml & mh;
            removed = std::popcount(words_[wl] & m);
            words_[wl] &= ~m;
        } else {
            removed += std::popcount(words_[wl] & ml);
            words_[wl] &= ~ml;
            for (std::size_t k = wl + 1; k < wh; ++k) {
                removed += std::popcount(words_[k]);
                words_[k] = 0;
            }
            removed += std::popcount(words_[wh] & mh);
            words_[wh] &= ~mh;
        }
        if (removed == 0) return false;
        nvals_ -= removed;  // bounds untouched: the removal is interior
        return true;
    }
    Builder out;
    bool changed = false;
    for (const Interval& iv : intervals()) {
        if (iv.hi < lo || iv.lo > hi) {
            out.push(iv);
            continue;
        }
        changed = true;
        if (iv.lo < lo) out.push({iv.lo, lo - 1});
        if (iv.hi > hi) out.push({hi + 1, iv.hi});
    }
    if (changed) {
        adopt(std::move(out));
        maybe_pack();
    }
    return changed;
}

void Domain::write_mask(const Domain& other, std::uint64_t* mask) const {
    if (other.empty()) return;
    Interval r{};
    std::int64_t from = std::max<std::int64_t>(pmin_, other.min());
    while (from <= pmax_ && other.next_run(static_cast<int>(from), r)) {
        if (r.lo > pmax_) break;
        set_bits(mask, base_, r.lo, std::min<std::int64_t>(r.hi, pmax_));
        from = static_cast<std::int64_t>(r.hi) + 1;
    }
}

bool Domain::packed_apply_mask(const std::uint64_t* mask) {
    std::int64_t removed = 0;
    for (std::size_t k = 0; k < words_.size(); ++k) {
        const std::uint64_t cleared = words_[k] & ~mask[k];
        if (cleared != 0) {
            removed += std::popcount(cleared);
            words_[k] &= mask[k];
        }
    }
    if (removed == 0) return false;
    nvals_ -= removed;
    if (nvals_ == 0) {
        clear_to_empty();
        return true;
    }
    packed_rescan_min(pmin_);
    packed_rescan_max(pmax_);
    return true;
}

bool Domain::intersect_with(const Domain& other) {
    if (empty()) return false;
    if (other.empty()) {
        clear_to_empty();
        return true;
    }
    if (packed_) {
        std::uint64_t mask[kPackedMaxWords] = {};
        write_mask(other, mask);
        return packed_apply_mask(mask);
    }
    // Interval representation: sweep own intervals against `other`'s runs
    // (which works whatever representation `other` uses).
    Builder out;
    const Interval* xs = data();
    std::uint32_t a = 0;
    Interval y{};
    const int other_max = other.max();
    bool have_y = other.next_run(other.min(), y);
    while (a < n_ && have_y) {
        const Interval& x = xs[a];
        const int lo = std::max(x.lo, y.lo);
        const int hi = std::min(x.hi, y.hi);
        if (lo <= hi) out.push({lo, hi});
        if (x.hi < y.hi) {
            ++a;
        } else if (y.hi == other_max) {
            have_y = false;
        } else {
            have_y = other.next_run(y.hi + 1, y);
        }
    }
    if (out.equals(*this)) return false;
    adopt(std::move(out));
    maybe_pack();
    return true;
}

bool Domain::assign(int v) {
    REVEC_EXPECTS(contains(v));
    if (is_fixed()) return false;
    if (packed_) {
        // Stay packed (a single set bit) so trailed word-diffs remain the
        // only restore format a packed domain ever needs.
        std::fill(words_.begin(), words_.end(), 0);
        words_[word_of(v)] = bit_of(v);
        pmin_ = v;
        pmax_ = v;
        nvals_ = 1;
        return true;
    }
    small_[0] = {v, v};
    n_ = 1;
    big_.clear();
    nvals_ = 1;
    return true;
}

bool operator==(const Domain& a, const Domain& b) {
    if (a.nvals_ != b.nvals_) return false;
    if (a.nvals_ == 0) return true;
    if (!a.packed_ && !b.packed_) {
        if (a.n_ != b.n_) return false;
        const Interval* da = a.data();
        const Interval* db = b.data();
        for (std::uint32_t i = 0; i < a.n_; ++i) {
            if (!(da[i] == db[i])) return false;
        }
        return true;
    }
    if (a.packed_ && b.packed_ && a.base_ == b.base_ &&
        a.words_.size() == b.words_.size()) {
        return std::memcmp(a.words_.data(), b.words_.data(),
                           a.words_.size() * sizeof(std::uint64_t)) == 0;
    }
    // Mixed representations: lockstep run comparison.
    if (a.min() != b.min() || a.max() != b.max()) return false;
    Interval ra{};
    Interval rb{};
    const int last = a.max();
    std::int64_t from = a.min();
    while (from <= last) {
        const int f = static_cast<int>(from);
        if (!a.next_run(f, ra) || !b.next_run(f, rb)) return false;
        if (!(ra == rb)) return false;
        from = static_cast<std::int64_t>(ra.hi) + 1;
    }
    return true;
}

std::string Domain::to_string() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for_each_run([&](int lo, int hi) {
        if (!first) os << ", ";
        first = false;
        if (lo == hi) {
            os << lo;
        } else {
            os << lo << ".." << hi;
        }
    });
    os << '}';
    return os.str();
}

void Domain::check_invariant() const {
    if (packed_) {
        REVEC_ASSERT(n_ == 0);
        REVEC_ASSERT(big_.empty());
        REVEC_ASSERT((base_ & 63) == 0);
        std::int64_t total = 0;
        for (const std::uint64_t w : words_) total += std::popcount(w);
        REVEC_ASSERT(total == nvals_);
        if (nvals_ > 0) {
            REVEC_ASSERT((words_[word_of(pmin_)] & bit_of(pmin_)) != 0);
            REVEC_ASSERT((words_[word_of(pmax_)] & bit_of(pmax_)) != 0);
        }
        return;
    }
    const Interval* d = data();
    std::int64_t total = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
        REVEC_ASSERT(d[i].lo <= d[i].hi);
        if (i > 0) REVEC_ASSERT(static_cast<std::int64_t>(d[i - 1].hi) + 1 < d[i].lo);
        total += static_cast<std::int64_t>(d[i].hi) - d[i].lo + 1;
    }
    REVEC_ASSERT(total == nvals_);
    REVEC_ASSERT(n_ <= kInlineIvs ? big_.empty() : big_.size() == n_);
}

}  // namespace revec::cp
