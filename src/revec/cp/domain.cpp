#include "revec/cp/domain.hpp"

#include <algorithm>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

Domain::Domain(int lo, int hi) {
    if (lo <= hi) ivs_.push_back({lo, hi});
}

Domain Domain::of_values(std::vector<int> values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    Domain d;
    for (const int v : values) {
        if (!d.ivs_.empty() && static_cast<std::int64_t>(d.ivs_.back().hi) + 1 == v) {
            d.ivs_.back().hi = v;
        } else {
            d.ivs_.push_back({v, v});
        }
    }
    return d;
}

std::int64_t Domain::size() const {
    std::int64_t n = 0;
    for (const Interval& iv : ivs_) n += static_cast<std::int64_t>(iv.hi) - iv.lo + 1;
    return n;
}

int Domain::min() const {
    REVEC_EXPECTS(!empty());
    return ivs_.front().lo;
}

int Domain::max() const {
    REVEC_EXPECTS(!empty());
    return ivs_.back().hi;
}

int Domain::value() const {
    REVEC_EXPECTS(is_fixed());
    return ivs_[0].lo;
}

bool Domain::contains(int v) const {
    // Binary search over intervals by lower bound.
    auto it = std::upper_bound(ivs_.begin(), ivs_.end(), v,
                               [](int x, const Interval& iv) { return x < iv.lo; });
    if (it == ivs_.begin()) return false;
    --it;
    return v <= it->hi;
}

bool Domain::next_value(int v, int& out) const {
    for (const Interval& iv : ivs_) {
        if (iv.hi < v) continue;
        out = std::max(iv.lo, v);
        return true;
    }
    return false;
}

bool Domain::remove_below(int v) {
    if (empty() || ivs_.front().lo >= v) return false;
    std::size_t keep = 0;
    while (keep < ivs_.size() && ivs_[keep].hi < v) ++keep;
    ivs_.erase(ivs_.begin(), ivs_.begin() + static_cast<std::ptrdiff_t>(keep));
    if (!ivs_.empty() && ivs_.front().lo < v) ivs_.front().lo = v;
    return true;
}

bool Domain::remove_above(int v) {
    if (empty() || ivs_.back().hi <= v) return false;
    std::size_t keep = ivs_.size();
    while (keep > 0 && ivs_[keep - 1].lo > v) --keep;
    ivs_.erase(ivs_.begin() + static_cast<std::ptrdiff_t>(keep), ivs_.end());
    if (!ivs_.empty() && ivs_.back().hi > v) ivs_.back().hi = v;
    return true;
}

bool Domain::remove_value(int v) { return remove_range(v, v); }

bool Domain::remove_range(int lo, int hi) {
    if (lo > hi || empty() || hi < ivs_.front().lo || lo > ivs_.back().hi) return false;
    std::vector<Interval> out;
    out.reserve(ivs_.size() + 1);
    bool changed = false;
    for (const Interval& iv : ivs_) {
        if (iv.hi < lo || iv.lo > hi) {
            out.push_back(iv);
            continue;
        }
        changed = true;
        if (iv.lo < lo) out.push_back({iv.lo, lo - 1});
        if (iv.hi > hi) out.push_back({hi + 1, iv.hi});
    }
    if (changed) ivs_ = std::move(out);
    return changed;
}

bool Domain::intersect_with(const Domain& other) {
    std::vector<Interval> out;
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < ivs_.size() && b < other.ivs_.size()) {
        const Interval& x = ivs_[a];
        const Interval& y = other.ivs_[b];
        const int lo = std::max(x.lo, y.lo);
        const int hi = std::min(x.hi, y.hi);
        if (lo <= hi) out.push_back({lo, hi});
        if (x.hi < y.hi) {
            ++a;
        } else {
            ++b;
        }
    }
    if (out == ivs_) return false;
    ivs_ = std::move(out);
    return true;
}

bool Domain::assign(int v) {
    REVEC_EXPECTS(contains(v));
    if (is_fixed()) return false;
    ivs_.assign(1, {v, v});
    return true;
}

std::string Domain::to_string() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const Interval& iv : ivs_) {
        if (!first) os << ", ";
        first = false;
        if (iv.lo == iv.hi) {
            os << iv.lo;
        } else {
            os << iv.lo << ".." << iv.hi;
        }
    }
    os << '}';
    return os.str();
}

void Domain::check_invariant() const {
    for (std::size_t i = 0; i < ivs_.size(); ++i) {
        REVEC_ASSERT(ivs_[i].lo <= ivs_[i].hi);
        if (i > 0) REVEC_ASSERT(static_cast<std::int64_t>(ivs_[i - 1].hi) + 1 < ivs_[i].lo);
    }
}

}  // namespace revec::cp
