#include "revec/cp/domain.hpp"

#include <algorithm>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

/// Scratch interval list for rebuild-style mutations. Output with at most
/// kInlineIvs intervals stays on the stack; longer lists spill into a
/// vector. adopt() moves the result into a Domain without re-copying the
/// spilled storage.
struct Domain::Builder {
    Interval buf[kInlineIvs];
    std::vector<Interval> spill;
    std::uint32_t n = 0;

    void push(Interval iv) {
        if (n < kInlineIvs) {
            buf[n] = iv;
        } else {
            if (n == kInlineIvs) spill.assign(buf, buf + kInlineIvs);
            spill.push_back(iv);
        }
        ++n;
    }

    bool equals(const Domain& d) const {
        if (n != d.n_) return false;
        const Interval* mine = n <= kInlineIvs ? buf : spill.data();
        const Interval* theirs = d.data();
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!(mine[i] == theirs[i])) return false;
        }
        return true;
    }
};

void Domain::adopt(Builder&& b) {
    n_ = b.n;
    if (n_ <= kInlineIvs) {
        for (std::uint32_t i = 0; i < n_; ++i) small_[i] = b.buf[i];
        big_.clear();
    } else {
        big_ = std::move(b.spill);
    }
}

void Domain::drop_front(std::uint32_t k) {
    if (k == 0) return;
    REVEC_ASSERT(k <= n_);
    const std::uint32_t left = n_ - k;
    if (n_ > kInlineIvs) {
        if (left <= kInlineIvs) {
            for (std::uint32_t i = 0; i < left; ++i) small_[i] = big_[k + i];
            big_.clear();
        } else {
            big_.erase(big_.begin(), big_.begin() + static_cast<std::ptrdiff_t>(k));
        }
    } else {
        for (std::uint32_t i = 0; i < left; ++i) small_[i] = small_[k + i];
    }
    n_ = left;
}

void Domain::drop_back(std::uint32_t k) {
    if (k == 0) return;
    REVEC_ASSERT(k <= n_);
    const std::uint32_t left = n_ - k;
    if (n_ > kInlineIvs && left <= kInlineIvs) {
        for (std::uint32_t i = 0; i < left; ++i) small_[i] = big_[i];
        big_.clear();
    } else if (n_ > kInlineIvs) {
        big_.resize(left);
    }
    n_ = left;
}

Domain::Domain(int lo, int hi) {
    if (lo <= hi) {
        small_[0] = {lo, hi};
        n_ = 1;
    }
}

Domain Domain::of_values(std::vector<int> values) {
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    Domain d;
    Builder b;
    for (const int v : values) {
        if (b.n > 0) {
            Interval& last = b.n <= kInlineIvs ? b.buf[b.n - 1] : b.spill.back();
            if (static_cast<std::int64_t>(last.hi) + 1 == v) {
                last.hi = v;
                continue;
            }
        }
        b.push({v, v});
    }
    d.adopt(std::move(b));
    return d;
}

std::int64_t Domain::size() const {
    std::int64_t n = 0;
    for (const Interval& iv : intervals()) n += static_cast<std::int64_t>(iv.hi) - iv.lo + 1;
    return n;
}

int Domain::min() const {
    REVEC_EXPECTS(!empty());
    return data()[0].lo;
}

int Domain::max() const {
    REVEC_EXPECTS(!empty());
    return data()[n_ - 1].hi;
}

int Domain::value() const {
    REVEC_EXPECTS(is_fixed());
    return data()[0].lo;
}

bool Domain::contains(int v) const {
    const std::span<const Interval> ivs = intervals();
    // Binary search over intervals by lower bound.
    auto it = std::upper_bound(ivs.begin(), ivs.end(), v,
                               [](int x, const Interval& iv) { return x < iv.lo; });
    if (it == ivs.begin()) return false;
    --it;
    return v <= it->hi;
}

bool Domain::intersects_range(int lo, int hi) const {
    REVEC_EXPECTS(lo <= hi);
    for (const Interval& iv : intervals()) {
        if (iv.hi < lo) continue;
        return iv.lo <= hi;
    }
    return false;
}

bool Domain::next_value(int v, int& out) const {
    for (const Interval& iv : intervals()) {
        if (iv.hi < v) continue;
        out = std::max(iv.lo, v);
        return true;
    }
    return false;
}

bool Domain::remove_below(int v) {
    if (empty() || data()[0].lo >= v) return false;
    const Interval* d = data();
    std::uint32_t keep = 0;
    while (keep < n_ && d[keep].hi < v) ++keep;
    drop_front(keep);
    if (n_ > 0 && data()[0].lo < v) data()[0].lo = v;
    return true;
}

bool Domain::remove_above(int v) {
    if (empty() || data()[n_ - 1].hi <= v) return false;
    const Interval* d = data();
    std::uint32_t drop = 0;
    while (drop < n_ && d[n_ - 1 - drop].lo > v) ++drop;
    drop_back(drop);
    if (n_ > 0 && data()[n_ - 1].hi > v) data()[n_ - 1].hi = v;
    return true;
}

bool Domain::remove_value(int v) { return remove_range(v, v); }

bool Domain::remove_range(int lo, int hi) {
    if (lo > hi || empty() || hi < data()[0].lo || lo > data()[n_ - 1].hi) return false;
    Builder out;
    bool changed = false;
    for (const Interval& iv : intervals()) {
        if (iv.hi < lo || iv.lo > hi) {
            out.push(iv);
            continue;
        }
        changed = true;
        if (iv.lo < lo) out.push({iv.lo, lo - 1});
        if (iv.hi > hi) out.push({hi + 1, iv.hi});
    }
    if (changed) adopt(std::move(out));
    return changed;
}

bool Domain::intersect_with(const Domain& other) {
    Builder out;
    const Interval* xs = data();
    const Interval* ys = other.data();
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    while (a < n_ && b < other.n_) {
        const Interval& x = xs[a];
        const Interval& y = ys[b];
        const int lo = std::max(x.lo, y.lo);
        const int hi = std::min(x.hi, y.hi);
        if (lo <= hi) out.push({lo, hi});
        if (x.hi < y.hi) {
            ++a;
        } else {
            ++b;
        }
    }
    if (out.equals(*this)) return false;
    adopt(std::move(out));
    return true;
}

bool Domain::assign(int v) {
    REVEC_EXPECTS(contains(v));
    if (is_fixed()) return false;
    small_[0] = {v, v};
    n_ = 1;
    big_.clear();
    return true;
}

std::string Domain::to_string() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const Interval& iv : intervals()) {
        if (!first) os << ", ";
        first = false;
        if (iv.lo == iv.hi) {
            os << iv.lo;
        } else {
            os << iv.lo << ".." << iv.hi;
        }
    }
    os << '}';
    return os.str();
}

void Domain::check_invariant() const {
    const Interval* d = data();
    for (std::uint32_t i = 0; i < n_; ++i) {
        REVEC_ASSERT(d[i].lo <= d[i].hi);
        if (i > 0) REVEC_ASSERT(static_cast<std::int64_t>(d[i - 1].hi) + 1 < d[i].lo);
    }
    REVEC_ASSERT(n_ <= kInlineIvs ? big_.empty() : big_.size() == n_);
}

}  // namespace revec::cp
