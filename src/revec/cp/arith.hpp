// Non-linear arithmetic propagators: z = max(xs), domain-consistent unary
// function channeling y = f(x) (used for the slot -> line / page memory
// geometry views), and z = x * k for constant k.
#pragma once

#include <functional>
#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// Post z == max(xs). `xs` must be non-empty.
void post_max(Store& store, IntVar z, std::vector<IntVar> xs);

/// Post y == f(x), domain-consistent in both directions. `f` must be a pure
/// function; it is evaluated over x's current domain on each propagation, so
/// it should be cheap. Intended for small domains (memory slots).
void post_unary_fun(Store& store, IntVar x, IntVar y, std::function<int(int)> f,
                    std::string description);

/// Post z == x * k for a non-zero integer constant k.
void post_mul_const(Store& store, IntVar x, std::int64_t k, IntVar z);

}  // namespace revec::cp
