#include "revec/cp/arith.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "revec/cp/linear.hpp"
#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

class MaxProp final : public Propagator {
public:
    MaxProp(IntVar z, std::vector<IntVar> xs) : z_(z), xs_(std::move(xs)) {
        REVEC_EXPECTS(!xs_.empty());
    }

    bool propagate(Store& s) override {
        // z's bounds from the xs.
        std::int64_t lb = s.min(xs_[0]);
        std::int64_t ub = s.max(xs_[0]);
        for (std::size_t i = 1; i < xs_.size(); ++i) {
            lb = std::max<std::int64_t>(lb, s.min(xs_[i]));
            ub = std::max<std::int64_t>(ub, s.max(xs_[i]));
        }
        if (!s.set_min(z_, lb) || !s.set_max(z_, ub)) return false;

        // Every x <= z.
        const std::int64_t zmax = s.max(z_);
        for (const IntVar x : xs_) {
            if (!s.set_max(x, zmax)) return false;
        }

        // If only one x can reach z's lower bound, it must.
        const std::int64_t zmin = s.min(z_);
        IntVar witness;
        int candidates = 0;
        for (const IntVar x : xs_) {
            if (s.max(x) >= zmin) {
                ++candidates;
                witness = x;
                if (candidates > 1) break;
            }
        }
        if (candidates == 0) return false;
        if (candidates == 1) {
            if (!s.set_min(witness, zmin)) return false;
        }
        return true;
    }

    Priority priority() const override { return Priority::Linear; }

    const char* class_name() const override { return "MaxProp"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "max(z" << z_.index() << ", " << xs_.size() << " vars)";
        return os.str();
    }

private:
    IntVar z_;
    std::vector<IntVar> xs_;
};

class UnaryFun final : public Propagator {
public:
    UnaryFun(IntVar x, IntVar y, std::function<int(int)> f, std::string desc)
        : x_(x), y_(y), f_(std::move(f)), desc_(std::move(desc)) {}

    bool propagate(Store& s) override {
        // Supported y values under the current x domain.
        std::vector<int> images;
        s.dom(x_).for_each([&](int v) { images.push_back(f_(v)); });
        if (!s.intersect(y_, Domain::of_values(std::move(images)))) return false;

        // Remove x values whose image left y's domain.
        const Domain& ydom = s.dom(y_);
        std::vector<int> supported;
        s.dom(x_).for_each([&](int v) {
            if (ydom.contains(f_(v))) supported.push_back(v);
        });
        return s.intersect(x_, Domain::of_values(std::move(supported)));
    }

    Priority priority() const override { return Priority::Linear; }
    // One pass reaches the local fixpoint: after y is confined to the
    // image of x and x to the support of the new y, every surviving y
    // value keeps a surviving preimage, so a rerun changes nothing.
    bool idempotent() const override { return true; }

    const char* class_name() const override { return "UnaryFun"; }

    std::string describe() const override { return desc_; }

private:
    IntVar x_;
    IntVar y_;
    std::function<int(int)> f_;
    std::string desc_;
};

}  // namespace

void post_max(Store& store, IntVar z, std::vector<IntVar> xs) {
    // Bounds-consistent: only reads min/max of z and the xs.
    std::vector<Watch> watches;
    watches.reserve(xs.size() + 1);
    for (const IntVar x : xs) watches.push_back({x, kEventBounds});
    watches.push_back({z, kEventBounds});
    store.post(std::make_unique<MaxProp>(z, std::move(xs)), watches);
}

void post_unary_fun(Store& store, IntVar x, IntVar y, std::function<int(int)> f,
                    std::string description) {
    store.post(std::make_unique<UnaryFun>(x, y, std::move(f), std::move(description)), {x, y});
}

void post_mul_const(Store& store, IntVar x, std::int64_t k, IntVar z) {
    REVEC_EXPECTS(k != 0);
    post_linear_eq(store, {{k, x}, {-1, z}}, 0);
}

}  // namespace revec::cp
