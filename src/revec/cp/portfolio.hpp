// Parallel portfolio branch-and-bound (tentpole of the solver-parallelism
// work): N workers run the sequential DFS of search.hpp over *diversified*
// configurations of the same model — permuted variable/value-selection
// heuristics, flattened phases, failure-limited restarts with RNG-jittered
// value ordering — against independent stores rebuilt through a re-posting
// hook. All workers share a single atomic incumbent objective, so any
// worker's improvement immediately prunes every other worker; the first
// worker to exhaust its (bound-pruned) search space proves optimality for
// the whole portfolio and cooperatively cancels the rest.
//
// A second worker kind (SolverConfig::lns_workers, DESIGN §5h) runs
// large-neighbourhood search over the shared incumbent *assignment*: each
// round relaxes a neighbourhood of the incumbent through the opaque
// LnsRoundFn hook and publishes strictly improving repairs back through
// the same shared bound. The portfolio stays model-agnostic — the hook is
// built by revec::lns over the scheduling model.
//
// Determinism: the merged result picks the best objective, breaking ties
// toward the lowest configuration index. Which worker *reports* the winning
// objective can still vary with thread timing, so after a proven-optimal
// parallel run the reported assignment is re-derived by a deterministic
// bounded sequential pass over the baseline configuration (canonical
// replay); repeated runs with the same seed and thread count then return
// bit-identical solutions. With one worker the portfolio is bit-compatible
// with the sequential solver (same tree, same node counts).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "revec/cp/search.hpp"
#include "revec/cp/store.hpp"

namespace revec::obs {
class TraceSink;
}  // namespace revec::obs

namespace revec::cp {

/// Failure-limited restart policy for the restart-flavored workers.
/// Geometric growth keeps restart workers complete: the limit eventually
/// exceeds any finite search space.
struct RestartPolicy {
    bool enabled = true;
    std::int64_t initial_failures = 512;
    double growth = 2.0;
};

/// One large-neighbourhood-search round request, handed to the LnsRoundFn
/// hook by an LNS worker. The portfolio knows nothing about scheduling
/// models — the hook (built by revec::lns over a KernelModel) interprets
/// the incumbent assignment, relaxes a neighbourhood, and re-solves the
/// frozen-rest subproblem.
struct LnsRoundContext {
    /// Snapshot of the best known full store assignment (indexed by
    /// IntVar::index() against any emission of the model). Never null.
    const std::vector<int>* incumbent = nullptr;
    std::int64_t objective = 0;  ///< the incumbent's objective value
    std::uint32_t seed = 0;      ///< deterministic per (worker, round)
    int worker = 0;              ///< LNS worker index (0-based)
    int round = 0;               ///< round number within this worker
    Deadline deadline;           ///< the portfolio's wall-clock limit
    const std::atomic<bool>* stop = nullptr;  ///< cooperative cancel
    obs::TraceBuffer* trace = nullptr;        ///< this worker's track
    std::int64_t trace_rid = 0;  ///< request id stamped on round spans; 0 = none
};

/// What one LNS round produced. `improved` implies a verified assignment
/// strictly better than the round's incumbent snapshot; the worker then
/// publishes it through the shared bound and the shared incumbent.
struct LnsRoundResult {
    bool improved = false;
    std::vector<int> assignment;  ///< full store assignment when improved
    std::int64_t objective = 0;
    SearchStats stats;  ///< repair-search work, absorbed into the worker's
};

/// The LNS round hook. Must be safe to invoke concurrently from several
/// LNS worker threads (each call gets its own context and seed).
using LnsRoundFn = std::function<LnsRoundResult(const LnsRoundContext&)>;

/// Portfolio knob threaded through the scheduling layers: how many workers,
/// how restart workers behave, and the seed feeding the jitter RNGs.
struct SolverConfig {
    int threads = 1;
    RestartPolicy restart_policy;
    std::uint32_t seed = 0x5eedu;

    /// Large-neighbourhood-search workers raced alongside the CP workers
    /// (DESIGN §5h). Each loops: snapshot the shared incumbent assignment,
    /// run one lns_round, publish accepted improvements through the shared
    /// bound so every CP worker prunes against them. 0 = off. Requires
    /// lns_round when positive.
    int lns_workers = 0;

    /// The round hook driving lns_workers; built by lns::make_portfolio_round.
    LnsRoundFn lns_round;

    /// Optional full store assignment matching initial_incumbent (e.g. the
    /// completed heuristic schedule), so LNS workers can start relaxing
    /// before any CP worker finds a first solution of its own.
    std::vector<int> lns_seed_assignment;

    /// Propagation-engine feature toggles, applied to every worker store and
    /// to the canonical-replay store. EngineConfig::legacy() reproduces the
    /// pre-event-engine behavior for differential testing.
    EngineConfig engine;

    /// Re-derive a proven-optimal parallel result with a deterministic
    /// bounded sequential pass so repeated runs return identical
    /// assignments, not just identical objectives.
    bool canonical_replay = true;

    /// Warm start: seed the shared incumbent bound with the objective value
    /// of an externally known feasible solution (e.g. a heuristic
    /// schedule). Every worker then only explores strictly better
    /// objectives from the first node on. An exhausted search that found
    /// nothing under this bound (status Unsat) proves the seeded solution
    /// optimal. INT64_MAX (the default) means "no incumbent".
    std::int64_t initial_incumbent = INT64_MAX;

    /// Trace sink for the solve. nullptr = tracing off (every event site is
    /// one branch). The portfolio registers one track per worker (in worker
    /// order, before the threads spawn, so serialization order is
    /// deterministic); the sequential layers write into the sink's main
    /// track.
    obs::TraceSink* trace = nullptr;

    /// Service request id stamped onto worker span begins (and LNS round
    /// contexts) so one request's story is filterable across tracks in
    /// revec-stats. 0 = no request association; spans then carry no rid
    /// payload, keeping standalone traces byte-identical to before.
    std::int64_t trace_rid = 0;

    /// Attribute propagation work (runs, time, domain changes, failures) to
    /// propagator classes on every worker store; results surface as
    /// prop_profile on the merged outcome. Adds a timer read per propagator
    /// execution.
    bool profile = false;
};

/// What the re-posting hook returns: the search phases and the objective
/// (an invalid objective makes it a satisfaction problem).
struct PostedModel {
    std::vector<Phase> phases;
    IntVar objective;
};

/// Re-posting hook: build the model into the given (fresh) store. Must be
/// deterministic — every call creates identical variables (same indices in
/// creation order) and constraints — and safe to invoke concurrently on
/// distinct stores.
using ModelBuilder = std::function<PostedModel(Store&)>;

/// One row of the diversification table.
struct WorkerConfig {
    VarSelect var_select = VarSelect::SmallestMin;
    ValSelect val_select = ValSelect::Min;
    bool keep_phase_heuristics = true;  ///< use the builder's per-phase heuristics
    bool flatten_phases = false;        ///< merge all phases into a single phase
    bool restarts = false;              ///< failure-limited restarts with jitter
    std::uint32_t jitter_seed = 0;      ///< 0 = no value jitter
    std::string label;
};

/// Configuration for worker `k`. Worker 0 is always the baseline (the
/// builder's own heuristics, no restarts) so a 1-thread portfolio explores
/// exactly the sequential tree.
WorkerConfig diversified_config(int k, std::uint32_t seed, const RestartPolicy& policy);

/// Per-worker outcome, kept for diagnostics and the scaling bench.
struct WorkerReport {
    int config_index = 0;
    std::string label;
    SolveStatus status = SolveStatus::Timeout;
    SearchStats stats;
    PropagationStats prop_stats;       ///< engine counters of the worker store
    std::vector<PropProfile> prop_profile;  ///< per-class work (profile mode)
    std::int64_t best_objective = -1;  ///< -1 = this worker found no solution
    bool proved = false;               ///< exhausted its bound-pruned tree

    // LNS worker bookkeeping (zero for CP workers).
    bool is_lns = false;
    std::int64_t lns_rounds = 0;
    std::int64_t lns_accepted = 0;  ///< strictly improving, verifier-clean rounds
    std::int64_t lns_rejected = 0;
};

/// Merged portfolio outcome. `best` holds the winning assignment indexed by
/// IntVar::index() against any store the builder produces.
struct PortfolioResult {
    SolveStatus status = SolveStatus::Unsat;
    SearchStats stats;       ///< merged over all workers (plus the replay pass)
    PropagationStats prop_stats;  ///< engine counters, merged likewise
    std::vector<PropProfile> prop_profile;  ///< per-class work, merged likewise
    std::vector<int> best;   ///< empty when no worker found a solution
    int winner = -1;         ///< config index that produced `best`
    std::vector<WorkerReport> workers;

    bool has_solution() const { return !best.empty(); }
    int value_of(IntVar x) const { return best.at(static_cast<std::size_t>(x.index())); }

    /// Adapter for call sites written against the sequential solver.
    SolveResult to_solve_result() const;
};

/// Minimize the built model's objective (or find a first solution when the
/// objective is invalid) with `config.threads` diversified workers sharing
/// one incumbent bound, plus `config.lns_workers` LNS workers improving the
/// shared incumbent assignment through the lns_round hook. `options.deadline`
/// and `options.max_failures` apply to every worker individually;
/// `options.stop`/`shared_bound`/`on_solution` must be null — the portfolio
/// owns those.
PortfolioResult solve_portfolio(const ModelBuilder& build, const SolverConfig& config,
                                const SearchOptions& options = {});

}  // namespace revec::cp
