#include "revec/cp/count.hpp"

#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

class BoolSum final : public Propagator {
public:
    BoolSum(std::vector<BoolVar> bools, IntVar total) : bools_(std::move(bools)), total_(total) {}

    bool propagate(Store& s) override {
        int ones = 0;
        int unfixed = 0;
        for (const BoolVar b : bools_) {
            if (s.fixed(b)) {
                ones += s.value(b);
            } else {
                ++unfixed;
            }
        }
        if (!s.set_min(total_, ones) || !s.set_max(total_, ones + unfixed)) return false;

        // If the bound is tight in either direction, force the unfixed bools.
        if (unfixed > 0) {
            if (s.min(total_) == ones + unfixed) {
                for (const BoolVar b : bools_) {
                    if (!s.fixed(b) && !s.assign(b, 1)) return false;
                }
            } else if (s.max(total_) == ones) {
                for (const BoolVar b : bools_) {
                    if (!s.fixed(b) && !s.assign(b, 0)) return false;
                }
            }
        }
        return true;
    }

    Priority priority() const override { return Priority::Linear; }

    const char* class_name() const override { return "BoolSum"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "bool_sum(" << bools_.size() << " bools)";
        return os.str();
    }

private:
    std::vector<BoolVar> bools_;
    IntVar total_;
};

}  // namespace

void post_bool_sum(Store& store, std::vector<BoolVar> bools, IntVar total) {
    // Bools only matter once fixed; the total is read through its bounds.
    std::vector<Watch> watches;
    watches.reserve(bools.size() + 1);
    for (const BoolVar b : bools) watches.push_back({b, kEventFixed});
    watches.push_back({total, kEventBounds});
    store.post(std::make_unique<BoolSum>(std::move(bools), total), watches);
}

}  // namespace revec::cp
