// Finite integer domain with a hybrid representation. Contiguous ranges and
// mildly holed domains live as a sorted set of disjoint, non-adjacent closed
// intervals (small-buffer optimized: up to kInlineIvs intervals inline, so a
// fixed value or a plain range never touches the heap). Hole-rich domains
// whose span fits kPackedMaxWords 64-bit words switch — when packing is
// enabled for the instance — into a word-packed bitmap: a 64-aligned base
// offset plus a fixed-stride word array, with min/max/size cached and
// maintained branch-free via ctz/clz/popcount so bound queries never walk
// an interval list. Domains whose span exceeds the packed budget keep the
// interval representation, which is also the legacy representation
// (EngineConfig::legacy() never enables packing).
//
// This is the value type trailed by the solver store; all operations are
// value-semantic. Packing is pure representation: every query and mutation
// is bit-for-bit equivalent across representations, so search trees do not
// depend on it.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "revec/support/assert.hpp"

namespace revec::cp {

class Store;

/// One closed interval [lo, hi].
struct Interval {
    int lo;
    int hi;
    friend bool operator==(const Interval&, const Interval&) = default;
};

/// A finite set of integers. An empty domain represents failure.
class Domain {
public:
    /// Intervals stored inline (no heap) — covers fixed values and ranges.
    static constexpr std::uint32_t kInlineIvs = 2;

    /// Word budget of the packed representation: domains spanning at most
    /// 64 * kPackedMaxWords values may pack; wider ones stay interval-based.
    static constexpr std::uint32_t kPackedMaxWords = 64;

    /// Representation tag (also mirrored into the store's SoA metadata).
    enum class Rep : std::uint8_t {
        Range = 0,      ///< one contiguous interval
        Intervals = 1,  ///< >1 intervals (or empty)
        Packed = 2,     ///< word-packed bitmap
    };

    /// The empty domain.
    Domain() = default;

    /// The interval domain [lo, hi]; empty when lo > hi.
    Domain(int lo, int hi);

    Domain(const Domain&) = default;
    Domain& operator=(const Domain&) = default;
    // Moves leave the source empty so a moved-from domain is never read as
    // pointing into a stolen heap buffer.
    Domain(Domain&& o) noexcept
        : n_(o.n_),
          packed_(o.packed_),
          pack_ok_(o.pack_ok_),
          base_(o.base_),
          pmin_(o.pmin_),
          pmax_(o.pmax_),
          nvals_(o.nvals_),
          big_(std::move(o.big_)),
          words_(std::move(o.words_)) {
        small_[0] = o.small_[0];
        small_[1] = o.small_[1];
        o.n_ = 0;
        o.packed_ = false;
        o.nvals_ = 0;
    }
    Domain& operator=(Domain&& o) noexcept {
        small_[0] = o.small_[0];
        small_[1] = o.small_[1];
        n_ = o.n_;
        packed_ = o.packed_;
        pack_ok_ = o.pack_ok_;
        base_ = o.base_;
        pmin_ = o.pmin_;
        pmax_ = o.pmax_;
        nvals_ = o.nvals_;
        big_ = std::move(o.big_);
        words_ = std::move(o.words_);
        o.n_ = 0;
        o.packed_ = false;
        o.nvals_ = 0;
        return *this;
    }

    /// Domain holding exactly the given values (any order, duplicates ok).
    static Domain of_values(std::vector<int> values);

    bool empty() const { return nvals_ == 0; }
    bool is_fixed() const { return nvals_ == 1; }

    /// True when the domain is one contiguous interval (no holes).
    bool is_range() const {
        return nvals_ > 0 &&
               nvals_ == static_cast<std::int64_t>(max()) - min() + 1;
    }

    /// Current representation.
    Rep rep() const {
        if (packed_) return Rep::Packed;
        return n_ == 1 ? Rep::Range : Rep::Intervals;
    }
    bool packed() const { return packed_; }

    /// Allow this instance to switch hole-rich content into the packed
    /// representation (repacks immediately when already eligible). Off by
    /// default so raw Domain values behave exactly like the legacy type;
    /// the store enables it per EngineConfig::packed_domains.
    void enable_packing();

    /// Number of maximal runs of consecutive values (intervals for the
    /// interval representation; counted from the bitmap when packed).
    std::size_t num_intervals() const;

    /// Number of values in the domain. O(1): cached across mutations.
    std::int64_t size() const { return nvals_; }

    /// Smallest value; domain must be non-empty.
    int min() const;
    /// Largest value; domain must be non-empty.
    int max() const;
    /// The single value of a fixed domain; domain must be fixed.
    int value() const;

    bool contains(int v) const;

    /// True iff some domain value lies in [lo, hi] (lo <= hi required).
    bool intersects_range(int lo, int hi) const;

    /// Smallest domain value >= v, or nullopt-like sentinel via `found`.
    bool next_value(int v, int& out) const;

    /// The first maximal run [out.lo, out.hi] whose end is >= from,
    /// truncated at the front to start no earlier than `from`. Returns
    /// false when no domain value >= from exists.
    bool next_run(int from, Interval& out) const;

    // -- mutation; each returns true if the domain changed ------------------
    bool remove_below(int v);
    bool remove_above(int v);
    bool remove_value(int v);
    bool remove_range(int lo, int hi);
    /// Keep only values also present in `other`.
    bool intersect_with(const Domain& other);
    /// Reduce to the single value v (caller guarantees contains(v)).
    bool assign(int v);

    /// Call `fn(lo, hi)` for every maximal run of consecutive values in
    /// ascending order — the block-iteration primitive: wide ranges are one
    /// callback, not one per value.
    template <typename Fn>
    void for_each_run(Fn&& fn) const {
        if (empty()) return;
        Interval r{};
        const int last = max();
        std::int64_t from = min();
        while (from <= last && next_run(static_cast<int>(from), r)) {
            fn(r.lo, r.hi);
            from = static_cast<std::int64_t>(r.hi) + 1;
        }
    }

    /// Call `fn(v)` for every value in ascending order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for_each_run([&](int lo, int hi) {
            for (int v = lo;; ++v) {
                fn(v);
                if (v == hi) break;  // avoids overflow at INT_MAX
            }
        });
    }

    /// Interval-representation storage; must not be called while packed
    /// (use next_run/for_each_run for representation-agnostic iteration).
    std::span<const Interval> intervals() const;

    // -- packed-representation accessors (trail word-diff support) ----------
    /// Bitmap words; empty span unless packed.
    std::span<const std::uint64_t> packed_words() const {
        return packed_ ? std::span<const std::uint64_t>(words_) :
                         std::span<const std::uint64_t>();
    }
    /// Value of bit 0 of word 0 (64-aligned); packed only.
    std::int64_t packed_base() const { return base_; }

    std::string to_string() const;

    /// Semantic equality: same value set, regardless of representation.
    friend bool operator==(const Domain& a, const Domain& b);

private:
    friend class Store;  // trail restore hooks below

    // -- trail-only restore hooks (Store::pop_level) ------------------------
    // Each undoes exactly one recorded mutation; preconditions are
    // guaranteed by the store's trailing discipline, not re-checked here.
    /// Undo a pure lower-bound clip: reinstate the first interval's lo.
    /// The domain must still be interval-represented: mutations recorded as
    /// Min/Max never convert (clips don't repack), and conversions between
    /// the record and its replay are undone first by a later full-restore
    /// record on the LIFO trail.
    void restore_lo(int lo) {
        REVEC_ASSERT(!packed_);
        nvals_ += data()[0].lo - static_cast<std::int64_t>(lo);
        data()[0].lo = lo;
    }
    /// Undo a pure upper-bound clip: reinstate the last interval's hi.
    void restore_hi(int hi) {
        REVEC_ASSERT(!packed_);
        nvals_ += static_cast<std::int64_t>(hi) - data()[n_ - 1].hi;
        data()[n_ - 1].hi = hi;
    }
    /// Reinstate a hole-free pre-state [lo, hi] wholesale.
    void restore_single(int lo, int hi) {
        small_[0] = {lo, hi};
        n_ = 1;
        big_.clear();
        packed_ = false;
        words_.clear();  // keeps capacity for the next repack
        nvals_ = static_cast<std::int64_t>(hi) - lo + 1;
    }
    /// Reinstate one bitmap word (packed only). Mutations only clear bits,
    /// so restores only add them back: the cached bounds move monotonically
    /// outward and are updated exactly from the restored word.
    void restore_word(std::uint32_t widx, std::uint64_t old);

    struct Builder;  // scratch interval list (defined in domain.cpp)

    const Interval* data() const { return n_ <= kInlineIvs ? small_ : big_.data(); }
    Interval* data() { return n_ <= kInlineIvs ? small_ : big_.data(); }

    void drop_front(std::uint32_t k);
    void drop_back(std::uint32_t k);
    void adopt(Builder&& b);
    void check_invariant() const;

    /// Switch interval content into the packed representation when packing
    /// is enabled, the domain has holes, and the span fits the word budget.
    void maybe_pack();
    void clear_to_empty();

    // Packed-representation internals. Word/bit of value v (v >= base_).
    std::size_t word_of(std::int64_t v) const {
        return static_cast<std::size_t>((v - base_) >> 6);
    }
    std::uint64_t bit_of(std::int64_t v) const {
        return std::uint64_t{1} << ((v - base_) & 63);
    }
    std::int64_t packed_end() const {  // one past the last representable value
        return base_ + static_cast<std::int64_t>(words_.size()) * 64;
    }
    /// Smallest set bit >= from (packed; from <= pmax_ required).
    int packed_next_set(std::int64_t from) const;
    /// Smallest clear bit >= from (packed; clamped by the span end).
    std::int64_t packed_next_clear(std::int64_t from) const;
    /// Recompute pmin_ upward from `from` after bits below were cleared.
    void packed_rescan_min(std::int64_t from);
    /// Recompute pmax_ downward from `from` after bits above were cleared.
    void packed_rescan_max(std::int64_t from);
    /// Bitmap of `other`'s values over this domain's base/stride.
    void write_mask(const Domain& other, std::uint64_t* mask) const;
    /// AND the bitmap with `mask`; updates size/bounds. True iff changed.
    bool packed_apply_mask(const std::uint64_t* mask);

    // Interval-representation invariant: intervals live in small_ when
    // n_ <= kInlineIvs, in big_ otherwise; big_ is logically empty (but may
    // retain capacity) while the inline buffer is active. While packed,
    // n_ == 0 and both interval buffers are logically empty; words_ holds
    // the fixed-stride bitmap and pmin_/pmax_/nvals_ the cached metadata.
    Interval small_[kInlineIvs] = {};
    std::uint32_t n_ = 0;
    bool packed_ = false;
    bool pack_ok_ = false;
    std::int64_t base_ = 0;
    int pmin_ = 0;
    int pmax_ = 0;
    std::int64_t nvals_ = 0;
    std::vector<Interval> big_;
    std::vector<std::uint64_t> words_;
};

}  // namespace revec::cp
