// Finite integer domain represented as a sorted set of disjoint,
// non-adjacent closed intervals. This is the value type trailed by the
// solver store; all operations are value-semantic.
//
// Storage is small-buffer optimized: up to kInlineIvs intervals live
// inline, so the dominant cases — a fixed value or a contiguous range —
// never touch the heap. Only hole-rich domains (> kInlineIvs intervals)
// spill into a heap-backed vector.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace revec::cp {

class Store;

/// One closed interval [lo, hi].
struct Interval {
    int lo;
    int hi;
    friend bool operator==(const Interval&, const Interval&) = default;
};

/// A finite set of integers. An empty domain represents failure.
class Domain {
public:
    /// Intervals stored inline (no heap) — covers fixed values and ranges.
    static constexpr std::uint32_t kInlineIvs = 2;

    /// The empty domain.
    Domain() = default;

    /// The interval domain [lo, hi]; empty when lo > hi.
    Domain(int lo, int hi);

    Domain(const Domain&) = default;
    Domain& operator=(const Domain&) = default;
    // Moves leave the source empty so a moved-from domain is never read as
    // pointing into a stolen heap buffer.
    Domain(Domain&& o) noexcept : n_(o.n_), big_(std::move(o.big_)) {
        small_[0] = o.small_[0];
        small_[1] = o.small_[1];
        o.n_ = 0;
    }
    Domain& operator=(Domain&& o) noexcept {
        small_[0] = o.small_[0];
        small_[1] = o.small_[1];
        n_ = o.n_;
        big_ = std::move(o.big_);
        o.n_ = 0;
        return *this;
    }

    /// Domain holding exactly the given values (any order, duplicates ok).
    static Domain of_values(std::vector<int> values);

    bool empty() const { return n_ == 0; }
    bool is_fixed() const { return n_ == 1 && small_[0].lo == small_[0].hi; }

    /// True when the domain is one contiguous interval (no holes).
    bool is_range() const { return n_ == 1; }

    /// Number of stored intervals.
    std::size_t num_intervals() const { return n_; }

    /// Number of values in the domain.
    std::int64_t size() const;

    /// Smallest value; domain must be non-empty.
    int min() const;
    /// Largest value; domain must be non-empty.
    int max() const;
    /// The single value of a fixed domain; domain must be fixed.
    int value() const;

    bool contains(int v) const;

    /// True iff some domain value lies in [lo, hi] (lo <= hi required).
    bool intersects_range(int lo, int hi) const;

    /// Smallest domain value >= v, or nullopt-like sentinel via `found`.
    bool next_value(int v, int& out) const;

    // -- mutation; each returns true if the domain changed ------------------
    bool remove_below(int v);
    bool remove_above(int v);
    bool remove_value(int v);
    bool remove_range(int lo, int hi);
    /// Keep only values also present in `other`.
    bool intersect_with(const Domain& other);
    /// Reduce to the single value v (caller guarantees contains(v)).
    bool assign(int v);

    /// Call `fn(v)` for every value in ascending order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Interval& iv : intervals()) {
            for (int v = iv.lo;; ++v) {
                fn(v);
                if (v == iv.hi) break;  // avoids overflow at INT_MAX
            }
        }
    }

    std::span<const Interval> intervals() const { return {data(), n_}; }

    std::string to_string() const;

    friend bool operator==(const Domain& a, const Domain& b) {
        if (a.n_ != b.n_) return false;
        const Interval* pa = a.data();
        const Interval* pb = b.data();
        for (std::uint32_t i = 0; i < a.n_; ++i) {
            if (!(pa[i] == pb[i])) return false;
        }
        return true;
    }

private:
    friend class Store;  // trail restore hooks below

    // -- trail-only restore hooks (Store::pop_level) ------------------------
    // Each undoes exactly one recorded mutation; preconditions are
    // guaranteed by the store's trailing discipline, not re-checked here.
    /// Undo a pure lower-bound clip: reinstate the first interval's lo.
    void restore_lo(int lo) { data()[0].lo = lo; }
    /// Undo a pure upper-bound clip: reinstate the last interval's hi.
    void restore_hi(int hi) { data()[n_ - 1].hi = hi; }
    /// Reinstate a hole-free pre-state [lo, hi] wholesale.
    void restore_single(int lo, int hi) {
        small_[0] = {lo, hi};
        n_ = 1;
        big_.clear();
    }

    struct Builder;  // scratch interval list (defined in domain.cpp)

    const Interval* data() const { return n_ <= kInlineIvs ? small_ : big_.data(); }
    Interval* data() { return n_ <= kInlineIvs ? small_ : big_.data(); }

    void drop_front(std::uint32_t k);
    void drop_back(std::uint32_t k);
    void adopt(Builder&& b);
    void check_invariant() const;

    // Invariant: intervals live in small_ when n_ <= kInlineIvs, in big_
    // otherwise; big_ is logically empty (but may retain capacity) while
    // the inline buffer is active.
    Interval small_[kInlineIvs] = {};
    std::uint32_t n_ = 0;
    std::vector<Interval> big_;
};

}  // namespace revec::cp
