// Finite integer domain represented as a sorted set of disjoint,
// non-adjacent closed intervals. This is the value type trailed by the
// solver store; all operations are value-semantic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace revec::cp {

/// One closed interval [lo, hi].
struct Interval {
    int lo;
    int hi;
    friend bool operator==(const Interval&, const Interval&) = default;
};

/// A finite set of integers. An empty domain represents failure.
class Domain {
public:
    /// The empty domain.
    Domain() = default;

    /// The interval domain [lo, hi]; empty when lo > hi.
    Domain(int lo, int hi);

    /// Domain holding exactly the given values (any order, duplicates ok).
    static Domain of_values(std::vector<int> values);

    bool empty() const { return ivs_.empty(); }
    bool is_fixed() const { return ivs_.size() == 1 && ivs_[0].lo == ivs_[0].hi; }

    /// Number of values in the domain.
    std::int64_t size() const;

    /// Smallest value; domain must be non-empty.
    int min() const;
    /// Largest value; domain must be non-empty.
    int max() const;
    /// The single value of a fixed domain; domain must be fixed.
    int value() const;

    bool contains(int v) const;

    /// Smallest domain value >= v, or nullopt-like sentinel via `found`.
    bool next_value(int v, int& out) const;

    // -- mutation; each returns true if the domain changed ------------------
    bool remove_below(int v);
    bool remove_above(int v);
    bool remove_value(int v);
    bool remove_range(int lo, int hi);
    /// Keep only values also present in `other`.
    bool intersect_with(const Domain& other);
    /// Reduce to the single value v (caller guarantees contains(v)).
    bool assign(int v);

    /// Call `fn(v)` for every value in ascending order.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Interval& iv : ivs_) {
            for (int v = iv.lo;; ++v) {
                fn(v);
                if (v == iv.hi) break;  // avoids overflow at INT_MAX
            }
        }
    }

    const std::vector<Interval>& intervals() const { return ivs_; }

    std::string to_string() const;

    friend bool operator==(const Domain&, const Domain&) = default;

private:
    void check_invariant() const;
    std::vector<Interval> ivs_;
};

}  // namespace revec::cp
