// Diff2 global constraint (Beldiceanu & Contejean 1994): pairwise
// non-overlap of rectangles in two dimensions. The paper uses it for memory
// allocation with slot reuse (eq. 11): rectangle i is
//   (origin_x = start time s_i, origin_y = slot_i,
//    len_x = lifetime life_i (a variable), len_y = 1).
// Here both origins and the x-length may be variables; y-lengths are
// constant. A rectangle with zero length in some dimension overlaps nothing.
#pragma once

#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// One rectangle of a Diff2 constraint.
struct Rect {
    IntVar x;       ///< origin in dimension 1
    IntVar y;       ///< origin in dimension 2
    IntVar len_x;   ///< length in dimension 1 (variable, >= 0)
    int len_y = 1;  ///< length in dimension 2 (constant, >= 0)
};

/// Post pairwise non-overlap of the rectangles.
void post_diff2(Store& store, std::vector<Rect> rects);

}  // namespace revec::cp
