#include "revec/cp/search.hpp"

#include <algorithm>
#include <limits>

#include "revec/obs/metrics.hpp"
#include "revec/obs/trace.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/rng.hpp"

namespace revec::cp {

namespace {

constexpr std::int64_t kNoBound = std::numeric_limits<std::int64_t>::max();

/// Pick the branching variable of a phase, or invalid if all are fixed.
IntVar pick_var(const Store& s, const Phase& phase) {
    IntVar best;
    std::int64_t best_key = 0;
    for (const IntVar x : phase.vars) {
        if (s.fixed(x)) continue;
        if (phase.var_select == VarSelect::InputOrder) return x;
        const std::int64_t key =
            phase.var_select == VarSelect::SmallestMin ? s.min(x) : s.size(x);
        if (!best.valid() || key < best_key) {
            best = x;
            best_key = key;
        }
    }
    return best;
}

/// The `target`-th smallest value of a domain: skips whole runs by their
/// length instead of stepping value by value.
int nth_value(const Domain& d, std::int64_t target) {
    Interval r{};
    const int last = d.max();
    std::int64_t from = d.min();
    std::int64_t remaining = target;
    while (from <= last && d.next_run(static_cast<int>(from), r)) {
        const std::int64_t len = static_cast<std::int64_t>(r.hi) - r.lo + 1;
        if (remaining < len) return static_cast<int>(r.lo + remaining);
        remaining -= len;
        from = static_cast<std::int64_t>(r.hi) + 1;
    }
    return d.min();  // target >= size(): same fallback as the linear walk
}

int pick_value(const Store& s, const Phase& phase, IntVar x, XorShift* jitter) {
    const Domain& d = s.dom(x);
    if (jitter != nullptr && d.size() > 1 && jitter->below(4) == 0) {
        const auto span = static_cast<int>(std::min<std::int64_t>(d.size(), 1 << 20));
        return nth_value(d, jitter->below(span));
    }
    switch (phase.val_select) {
        case ValSelect::Min: return d.min();
        case ValSelect::Max: return d.max();
        case ValSelect::Median: return nth_value(d, d.size() / 2);
    }
    REVEC_UNREACHABLE("bad ValSelect");
}

struct Decision {
    IntVar var;
    int value;
};

std::optional<Decision> choose(const Store& s, const std::vector<Phase>& phases,
                               XorShift* jitter) {
    for (const Phase& phase : phases) {
        const IntVar x = pick_var(s, phase);
        if (x.valid()) return Decision{x, pick_value(s, phase, x, jitter)};
    }
    return std::nullopt;
}

struct Frame {
    IntVar var;
    int value;
    bool tried_right = false;
};

}  // namespace

void SearchStats::export_metrics(obs::MetricsRegistry& m, const std::string& prefix) const {
    m.add(prefix + "nodes", nodes);
    m.add(prefix + "failures", failures);
    m.add(prefix + "solutions", solutions);
    m.add(prefix + "cutoff_prunes", cutoff_prunes);
    m.add(prefix + "restarts", restarts);
    m.gauge(prefix + "time_ms", time_ms);
}

SolveResult solve(Store& store, const std::vector<Phase>& phases, IntVar objective,
                  const SearchOptions& options) {
    REVEC_EXPECTS(store.level() == 0);
    Stopwatch watch;
    SolveResult result;
    std::vector<Frame> frames;

    obs::TraceBuffer* const trace = options.trace;
    store.set_trace(trace);

    XorShift jitter_rng(options.value_jitter_seed);
    XorShift* jitter = options.value_jitter_seed != 0 ? &jitter_rng : nullptr;

    bool have_best = false;
    std::int64_t best_obj = 0;

    const auto record_solution = [&] {
        result.best.resize(store.num_vars());
        for (std::size_t i = 0; i < store.num_vars(); ++i) {
            result.best[i] = store.min(IntVar(static_cast<std::int32_t>(i)));
        }
        ++result.stats.solutions;
        obs::instant(trace, obs::TraceLevel::Phase, "solution", "obj",
                     objective.valid() ? store.min(objective) : 0, "nodes",
                     result.stats.nodes);
    };

    /// Publish a local improvement to the shared incumbent (atomic min).
    const auto publish_bound = [&] {
        if (options.shared_bound == nullptr) return;
        std::int64_t cur = options.shared_bound->load(std::memory_order_relaxed);
        while (best_obj < cur &&
               !options.shared_bound->compare_exchange_weak(cur, best_obj,
                                                            std::memory_order_relaxed)) {
        }
        obs::instant(trace, obs::TraceLevel::Phase, "bound", "obj", best_obj);
    };

    /// Install objective <= cutoff-1, where cutoff is the tightest of the
    /// local and shared incumbents. Returns false when the bound empties
    /// the objective's domain (the subtree cannot improve).
    const auto install_cutoff = [&]() -> bool {
        if (!objective.valid()) return true;
        std::int64_t cutoff = have_best ? best_obj : kNoBound;
        if (options.shared_bound != nullptr) {
            cutoff = std::min(cutoff,
                              options.shared_bound->load(std::memory_order_relaxed));
        }
        if (cutoff == kNoBound) return true;
        if (store.set_max(objective, cutoff - 1)) return true;
        ++result.stats.cutoff_prunes;
        return false;
    };

    const auto finish = [&](SolveStatus status) {
        // Unwind so the caller gets the store back at root level.
        while (store.level() > 0) store.pop_level();
        result.status = status;
        result.stats.time_ms = watch.elapsed_ms();
        result.prop_stats = store.stats();
        if (store.profiling()) result.prop_profile = store.profile_by_class();
        return result;
    };

    const auto out_of_budget = [&] {
        if (options.stop != nullptr && options.stop->load(std::memory_order_relaxed)) {
            return true;
        }
        if (options.deadline.expired()) return true;
        return options.max_failures >= 0 && result.stats.failures > options.max_failures;
    };

    bool ok = store.propagate();
    while (true) {
        if (out_of_budget()) {
            return finish(have_best ? SolveStatus::SatTimeout : SolveStatus::Timeout);
        }
        if (ok) {
            const auto decision = choose(store, phases, jitter);
            if (!decision.has_value()) {
                record_solution();
                if (!objective.valid() || options.stop_at_first_solution) {
                    return finish(SolveStatus::Optimal);
                }
                best_obj = store.min(objective);
                have_best = true;
                publish_bound();
                if (options.on_solution) options.on_solution(result.best, best_obj);
                ok = false;  // force backtracking to look for better solutions
                continue;
            }
            ++result.stats.nodes;
            obs::instant(trace, obs::TraceLevel::Node, "node", "depth",
                         static_cast<std::int64_t>(frames.size()));
            frames.push_back({decision->var, decision->value, false});
            store.push_level();
            ok = store.assign(decision->var, decision->value);
            if (ok) ok = install_cutoff();
            if (ok) ok = store.propagate();
        } else {
            ++result.stats.failures;
            obs::instant(trace, obs::TraceLevel::Node, "fail", "depth",
                         static_cast<std::int64_t>(frames.size()));
            // Backtrack to the deepest frame with an untried right branch.
            while (true) {
                if (frames.empty()) {
                    return finish(have_best || result.stats.solutions > 0 ? SolveStatus::Optimal
                                                                          : SolveStatus::Unsat);
                }
                Frame& f = frames.back();
                store.pop_level();
                if (!f.tried_right) {
                    f.tried_right = true;
                    ++result.stats.nodes;
                    obs::instant(trace, obs::TraceLevel::Node, "node", "depth",
                                 static_cast<std::int64_t>(frames.size()) - 1);
                    store.push_level();
                    ok = store.remove(f.var, f.value);
                    if (ok) ok = install_cutoff();
                    if (ok) ok = store.propagate();
                    break;
                }
                frames.pop_back();
            }
        }
    }
}

SolveResult satisfy(Store& store, const std::vector<Phase>& phases, const SearchOptions& options) {
    SearchOptions opts = options;
    opts.stop_at_first_solution = true;
    return solve(store, phases, IntVar(), opts);
}

}  // namespace revec::cp
