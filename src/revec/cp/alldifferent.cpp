#include "revec/cp/alldifferent.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

class AllDifferent final : public Propagator {
public:
    explicit AllDifferent(std::vector<IntVar> vars) : vars_(std::move(vars)) {}

    bool propagate(Store& s) override {
        // 1. Value propagation: remove every assigned value from the others.
        for (std::size_t i = 0; i < vars_.size(); ++i) {
            if (!s.fixed(vars_[i])) continue;
            const int v = s.value(vars_[i]);
            for (std::size_t j = 0; j < vars_.size(); ++j) {
                if (j == i) continue;
                if (s.fixed(vars_[j]) && s.value(vars_[j]) == v) return false;
                if (!s.fixed(vars_[j]) && !s.remove(vars_[j], v)) return false;
            }
        }

        // 2. Hall intervals over the bounds: if the variables whose domains
        //    lie inside [a, b] saturate it, no other variable may use it;
        //    if they overflow it, fail. `bounds_` is member scratch — this
        //    propagator is hot enough that per-run allocation shows up.
        bounds_.clear();
        for (const IntVar x : vars_) {
            bounds_.push_back(s.min(x));
            bounds_.push_back(s.max(x));
        }
        std::sort(bounds_.begin(), bounds_.end());
        bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());

        for (std::size_t ai = 0; ai < bounds_.size(); ++ai) {
            for (std::size_t bi = ai; bi < bounds_.size(); ++bi) {
                const int a = bounds_[ai];
                const int b = bounds_[bi];
                const std::int64_t width = static_cast<std::int64_t>(b) - a + 1;
                int inside = 0;
                for (const IntVar x : vars_) {
                    if (s.min(x) >= a && s.max(x) <= b) ++inside;
                }
                if (inside > width) return false;
                if (inside == width) {
                    // Hall set: remove [a, b] from every variable outside it.
                    for (const IntVar x : vars_) {
                        if (s.min(x) >= a && s.max(x) <= b) continue;
                        if (!s.remove_range(x, a, b)) return false;
                    }
                }
            }
        }
        return true;
    }

    Priority priority() const override { return Priority::Global; }

    const char* class_name() const override { return "AllDifferent"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "all_different(" << vars_.size() << " vars)";
        return os.str();
    }

private:
    std::vector<IntVar> vars_;
    std::vector<int> bounds_;  ///< per-run scratch
};

}  // namespace

void post_all_different(Store& store, std::vector<IntVar> vars) {
    // Value propagation keys off FIXED, Hall intervals off the bounds;
    // interior hole removals change neither.
    std::vector<Watch> watches;
    watches.reserve(vars.size());
    for (const IntVar x : vars) watches.push_back({x, kEventBounds | kEventFixed});
    store.post(std::make_unique<AllDifferent>(std::move(vars)), watches);
}

}  // namespace revec::cp
