#include "revec/cp/alldifferent.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

class AllDifferent final : public Propagator {
public:
    explicit AllDifferent(std::vector<IntVar> vars) : vars_(std::move(vars)) {}

    bool propagate(Store& s) override {
        // 1. Value propagation: remove every assigned value from the others.
        for (std::size_t i = 0; i < vars_.size(); ++i) {
            if (!s.fixed(vars_[i])) continue;
            const int v = s.value(vars_[i]);
            for (std::size_t j = 0; j < vars_.size(); ++j) {
                if (j == i) continue;
                if (s.fixed(vars_[j]) && s.value(vars_[j]) == v) return false;
                if (!s.fixed(vars_[j]) && !s.remove(vars_[j], v)) return false;
            }
        }

        // 2. Hall intervals over the bounds: if the variables whose domains
        //    lie inside [a, b] saturate it, no other variable may use it;
        //    if they overflow it, fail. All scratch is member state — this
        //    propagator is hot enough that per-run allocation shows up, and
        //    the O(|bounds|² · n) scan runs over locally cached bounds
        //    (refreshed after every mutation, so the pruning sequence is
        //    identical to re-reading the store each probe).
        const std::size_t n = vars_.size();
        mins_.resize(n);
        maxs_.resize(n);
        bounds_.clear();
        for (std::size_t i = 0; i < n; ++i) {
            mins_[i] = s.min(vars_[i]);
            maxs_[i] = s.max(vars_[i]);
            bounds_.push_back(mins_[i]);
            bounds_.push_back(maxs_[i]);
        }
        std::sort(bounds_.begin(), bounds_.end());
        bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());

        for (std::size_t ai = 0; ai < bounds_.size(); ++ai) {
            for (std::size_t bi = ai; bi < bounds_.size(); ++bi) {
                const int a = bounds_[ai];
                const int b = bounds_[bi];
                const std::int64_t width = static_cast<std::int64_t>(b) - a + 1;
                // n variables can neither overflow nor saturate a wider
                // interval, and widths only grow with bi (bounds_ sorted).
                if (width > static_cast<std::int64_t>(n)) break;
                int inside = 0;
                for (std::size_t i = 0; i < n; ++i) {
                    if (mins_[i] >= a && maxs_[i] <= b) ++inside;
                }
                if (inside > width) return false;
                if (inside == width) {
                    // Hall set: remove [a, b] from every variable outside it.
                    for (std::size_t i = 0; i < n; ++i) {
                        if (mins_[i] >= a && maxs_[i] <= b) continue;
                        if (!s.remove_range(vars_[i], a, b)) return false;
                        mins_[i] = s.min(vars_[i]);
                        maxs_[i] = s.max(vars_[i]);
                    }
                }
            }
        }
        return true;
    }

    Priority priority() const override { return Priority::Global; }

    const char* class_name() const override { return "AllDifferent"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "all_different(" << vars_.size() << " vars)";
        return os.str();
    }

private:
    std::vector<IntVar> vars_;
    std::vector<int> bounds_;  ///< per-run scratch
    std::vector<int> mins_;    ///< per-run scratch: cached SoA bounds
    std::vector<int> maxs_;    ///< per-run scratch: cached SoA bounds
};

}  // namespace

void post_all_different(Store& store, std::vector<IntVar> vars) {
    // Value propagation keys off FIXED, Hall intervals off the bounds;
    // interior hole removals change neither.
    std::vector<Watch> watches;
    watches.reserve(vars.size());
    for (const IntVar x : vars) watches.push_back({x, kEventBounds | kEventFixed});
    store.post(std::make_unique<AllDifferent>(std::move(vars)), watches);
}

}  // namespace revec::cp
