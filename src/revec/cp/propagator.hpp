// Propagator interface. A propagator watches a set of variables and, when
// any of them changes, prunes inconsistent values from its variables'
// domains via the Store modification API. Propagation must be monotone
// (only ever remove values), which together with finite domains guarantees
// fixpoint termination.
#pragma once

#include <string>

namespace revec::cp {

class Store;

class Propagator {
public:
    virtual ~Propagator() = default;

    /// Prune. Return false iff the propagator detected failure directly;
    /// domain wipe-outs are also detected by the Store modification calls
    /// (which return false), and implementations must forward that.
    virtual bool propagate(Store& store) = 0;

    /// Human-readable description for debugging and solver traces.
    virtual std::string describe() const = 0;

    /// Identifier assigned by the Store at post time.
    int id() const { return id_; }

private:
    friend class Store;
    int id_ = -1;
};

}  // namespace revec::cp
