// Propagator interface. A propagator watches a set of variables and, when
// any of them changes, prunes inconsistent values from its variables'
// domains via the Store modification API. Propagation must be monotone
// (only ever remove values), which together with finite domains guarantees
// fixpoint termination.
//
// Wakeups are event-typed: every domain mutation fires a set of
// modification events, and a propagator subscribes to each watched
// variable with an event mask. A bounds-consistent propagator that
// subscribes {MIN, MAX} is never woken by interior hole removals. Masks
// must be conservative: if skipping an event could change what the
// propagator would prune, the event belongs in the mask — otherwise the
// propagation fixpoint (and with it the search tree) would shift.
#pragma once

#include <cstdint>
#include <string>

#include "revec/cp/var.hpp"

namespace revec::cp {

class Store;

// -- modification events ----------------------------------------------------

/// Bitmask of domain modification events. DOMAIN fires on *every* change,
/// so subscribing kEventAll is exactly the legacy wake-on-any-change
/// behavior; MIN/MAX/FIXED refine it.
using EventMask = std::uint32_t;

inline constexpr EventMask kEventMin = 1u << 0;    ///< lower bound increased
inline constexpr EventMask kEventMax = 1u << 1;    ///< upper bound decreased
inline constexpr EventMask kEventFixed = 1u << 2;  ///< became a single value
inline constexpr EventMask kEventDomain = 1u << 3; ///< any change (holes included)
inline constexpr EventMask kEventBounds = kEventMin | kEventMax;
inline constexpr EventMask kEventAll = kEventMin | kEventMax | kEventFixed | kEventDomain;
inline constexpr int kNumEventKinds = 4;

/// One subscription: wake the propagator when `var` fires an event in
/// `events`.
struct Watch {
    IntVar var;
    EventMask events = kEventAll;
};

/// Propagation cost class; the store drains cheaper buckets first so
/// expensive global constraints see the strongest domains when they run.
enum class Priority : std::uint8_t {
    Unary = 0,   ///< unary/binary checks: disequality, reified-const, clauses
    Linear = 1,  ///< linear sums, element, count, reified-var, n-ary arith
    Global = 2,  ///< cumulative, alldifferent, diff2
};
inline constexpr int kNumPriorities = 3;

class Propagator {
public:
    virtual ~Propagator() = default;

    /// Prune. Return false iff the propagator detected failure directly;
    /// domain wipe-outs are also detected by the Store modification calls
    /// (which return false), and implementations must forward that.
    virtual bool propagate(Store& store) = 0;

    /// Human-readable description for debugging and solver traces.
    virtual std::string describe() const = 0;

    /// Stable class label ("Cumulative", "LinearLeq", ...) used to attribute
    /// profiled work (executions, time, domain changes, failures) to
    /// propagator classes in the metrics output. Must return a pointer to a
    /// static-duration string.
    virtual const char* class_name() const { return "Propagator"; }

    /// Queue bucket this propagator drains from.
    virtual Priority priority() const { return Priority::Linear; }

    /// Declare that one propagate() run reaches this propagator's local
    /// fixpoint: re-running it immediately on the domains it just produced
    /// would change nothing. The store then suppresses self-wakeups (events
    /// the propagator fires on its own watched variables while running).
    /// Declaring this falsely shifts the propagation fixpoint — when in
    /// doubt, leave it false.
    virtual bool idempotent() const { return false; }

    /// Identifier assigned by the Store at post time.
    int id() const { return id_; }

private:
    friend class Store;
    int id_ = -1;
};

}  // namespace revec::cp
