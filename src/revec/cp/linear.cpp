#include "revec/cp/linear.hpp"

#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::cp {

namespace {

std::int64_t term_min(const Store& s, const LinTerm& t) {
    return t.coeff >= 0 ? t.coeff * s.min(t.var) : t.coeff * s.max(t.var);
}

std::int64_t term_max(const Store& s, const LinTerm& t) {
    return t.coeff >= 0 ? t.coeff * s.max(t.var) : t.coeff * s.min(t.var);
}

/// Floor division for possibly-negative numerators.
std::int64_t div_floor(std::int64_t a, std::int64_t b) {
    REVEC_EXPECTS(b > 0);
    const std::int64_t q = a / b;
    return (a % b != 0 && a < 0) ? q - 1 : q;
}

/// Bounds propagation for sum(terms) <= c. Shared by Leq and Eq.
bool prune_leq(Store& s, const std::vector<LinTerm>& terms, std::int64_t c) {
    std::int64_t total_min = 0;
    for (const LinTerm& t : terms) total_min += term_min(s, t);
    if (total_min > c) return false;
    for (const LinTerm& t : terms) {
        if (t.coeff == 0) continue;
        const std::int64_t slack = c - (total_min - term_min(s, t));
        if (t.coeff > 0) {
            if (!s.set_max(t.var, div_floor(slack, t.coeff))) return false;
        } else {
            // coeff*x <= slack with coeff < 0  <=>  x >= ceil(slack/coeff)
            // and ceil(a / -b) == -floor(a / b) for b > 0.
            if (!s.set_min(t.var, -div_floor(slack, -t.coeff))) return false;
        }
    }
    return true;
}

class LinearLeq final : public Propagator {
public:
    LinearLeq(std::vector<LinTerm> terms, std::int64_t c) : terms_(std::move(terms)), c_(c) {}

    bool propagate(Store& s) override { return prune_leq(s, terms_, c_); }

    Priority priority() const override { return Priority::Linear; }

    const char* class_name() const override { return "LinearLeq"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "linear_leq(" << terms_.size() << " terms, c=" << c_ << ")";
        return os.str();
    }

private:
    std::vector<LinTerm> terms_;
    std::int64_t c_;
};

class LinearEq final : public Propagator {
public:
    LinearEq(std::vector<LinTerm> terms, std::int64_t c) : terms_(std::move(terms)), c_(c) {
        neg_ = terms_;
        for (LinTerm& t : neg_) t.coeff = -t.coeff;
    }

    bool propagate(Store& s) override {
        return prune_leq(s, terms_, c_) && prune_leq(s, neg_, -c_);
    }

    Priority priority() const override { return Priority::Linear; }

    const char* class_name() const override { return "LinearEq"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "linear_eq(" << terms_.size() << " terms, c=" << c_ << ")";
        return os.str();
    }

private:
    std::vector<LinTerm> terms_;
    std::vector<LinTerm> neg_;
    std::int64_t c_;
};

class NotEqual final : public Propagator {
public:
    NotEqual(IntVar x, IntVar y, std::int64_t c) : x_(x), y_(y), c_(c) {}

    // x != y + c: value-remove once either side is fixed.
    bool propagate(Store& s) override {
        if (s.fixed(x_)) {
            if (!s.remove(y_, static_cast<std::int64_t>(s.value(x_)) - c_)) return false;
        }
        if (s.fixed(y_)) {
            if (!s.remove(x_, static_cast<std::int64_t>(s.value(y_)) + c_)) return false;
        }
        return true;
    }

    Priority priority() const override { return Priority::Unary; }
    // Removing the fixed side's value from the other side is a no-op on a
    // rerun, even when that removal fixes the other side in turn.
    bool idempotent() const override { return true; }

    const char* class_name() const override { return "NotEqual"; }

    std::string describe() const override {
        std::ostringstream os;
        os << "not_equal(x" << x_.index() << ", y" << y_.index() << " + " << c_ << ")";
        return os.str();
    }

private:
    IntVar x_;
    IntVar y_;
    std::int64_t c_;
};

}  // namespace

void post_linear_leq(Store& store, std::vector<LinTerm> terms, std::int64_t c) {
    // Bounds-consistent one direction: the propagator only reads min of
    // positive terms and max of negative terms, so only those bound moves
    // can change its prunes.
    std::vector<Watch> watches;
    watches.reserve(terms.size());
    for (const LinTerm& t : terms) {
        watches.push_back({t.var, t.coeff >= 0 ? kEventMin : kEventMax});
    }
    store.post(std::make_unique<LinearLeq>(std::move(terms), c), watches);
}

void post_linear_eq(Store& store, std::vector<LinTerm> terms, std::int64_t c) {
    // Both directions: any bound move matters, interior holes never do.
    std::vector<Watch> watches;
    watches.reserve(terms.size());
    for (const LinTerm& t : terms) watches.push_back({t.var, kEventBounds});
    store.post(std::make_unique<LinearEq>(std::move(terms), c), watches);
}

void post_leq_offset(Store& store, IntVar x, std::int64_t c, IntVar y) {
    post_linear_leq(store, {{1, x}, {-1, y}}, -c);
}

void post_eq_offset(Store& store, IntVar x, std::int64_t c, IntVar y) {
    post_linear_eq(store, {{1, x}, {-1, y}}, -c);
}

void post_not_equal(Store& store, IntVar x, IntVar y, std::int64_t c) {
    // Acts only once a side is fixed; bounds and hole changes are ignored.
    store.post(std::make_unique<NotEqual>(x, y, c),
               std::vector<Watch>{{x, kEventFixed}, {y, kEventFixed}});
}

void post_not_value(Store& store, IntVar x, std::int64_t v) {
    store.remove(x, v);  // immediate; failure surfaces through store.failed()
}

}  // namespace revec::cp
