// Cumulative global constraint (Aggoun & Beldiceanu 1993) with variable
// start times and constant durations/resource demands, via time-table
// (compulsory-part) propagation. This models the paper's eq. (2): at any
// cycle the vector lanes in use must not exceed nLanes, and likewise for the
// scalar accelerator and the index/merge unit (capacity 1).
#pragma once

#include <vector>

#include "revec/cp/store.hpp"
#include "revec/cp/var.hpp"

namespace revec::cp {

/// One task of a cumulative resource. The duration is either the constant
/// `duration` or, when `dur_var` is valid, a variable whose current minimum
/// drives the (sound) time-table reasoning — used for the redundant
/// "live vector data <= available slots" constraint, where a data node's
/// lifetime is a variable.
struct CumulTask {
    IntVar start;
    int duration;  ///< > 0 (ignored when dur_var is valid)
    int demand;    ///< >= 0 resource units while running
    IntVar dur_var{};  ///< optional variable duration (>= 0)
};

/// Post Cumulative(tasks, capacity): for every time t,
/// sum of demand over tasks with start <= t < start+duration is <= capacity.
void post_cumulative(Store& store, std::vector<CumulTask> tasks, int capacity);

}  // namespace revec::cp
