// Minimal XML substrate for IR serialization (the paper's DSL emits the
// dataflow graph "in XML format"). Supports the subset the IR schema needs:
// elements, attributes, text content, comments, and an XML declaration.
// No namespaces, DTDs, or entities beyond the five predefined ones.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace revec::xml {

/// An XML element: tag name, attributes in document order, child elements,
/// and (concatenated) text content.
class Element {
public:
    explicit Element(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    // -- attributes --------------------------------------------------------
    void set_attr(std::string key, std::string value);
    bool has_attr(std::string_view key) const;
    /// Attribute value; throws revec::Error if absent.
    const std::string& attr(std::string_view key) const;
    /// Attribute value or `fallback` if absent.
    std::string attr_or(std::string_view key, std::string_view fallback) const;
    long long attr_int(std::string_view key) const;
    const std::vector<std::pair<std::string, std::string>>& attrs() const { return attrs_; }

    // -- children ----------------------------------------------------------
    Element& add_child(std::string name);
    const std::vector<std::unique_ptr<Element>>& children() const { return children_; }
    /// All direct children with the given tag name.
    std::vector<const Element*> children_named(std::string_view name) const;
    /// The unique direct child with the given tag; throws if 0 or >1 exist.
    const Element& child(std::string_view name) const;
    /// Pointer to the unique direct child, or nullptr when absent; throws on >1.
    const Element* child_opt(std::string_view name) const;

    // -- text ---------------------------------------------------------------
    void append_text(std::string_view text) { text_ += text; }
    const std::string& text() const { return text_; }

private:
    std::string name_;
    std::vector<std::pair<std::string, std::string>> attrs_;
    std::vector<std::unique_ptr<Element>> children_;
    std::string text_;
};

/// A document owning a single root element.
class Document {
public:
    explicit Document(std::string root_name) : root_(std::make_unique<Element>(std::move(root_name))) {}

    Element& root() { return *root_; }
    const Element& root() const { return *root_; }

    /// Serialize with 2-space indentation and an XML declaration.
    void write(std::ostream& os) const;
    std::string to_string() const;

    /// Parse a document; throws revec::Error with line information on
    /// malformed input.
    static Document parse(std::string_view input);

private:
    Document() = default;
    std::unique_ptr<Element> root_;
};

/// Escape `&<>"'` for use in text or attribute values.
std::string escape(std::string_view raw);

}  // namespace revec::xml
