#include "revec/xml/xml.hpp"

#include <cctype>
#include <ostream>
#include <sstream>

#include "revec/support/assert.hpp"
#include "revec/support/strings.hpp"

namespace revec::xml {

// ---------------------------------------------------------------------------
// Element
// ---------------------------------------------------------------------------

void Element::set_attr(std::string key, std::string value) {
    for (auto& [k, v] : attrs_) {
        if (k == key) {
            v = std::move(value);
            return;
        }
    }
    attrs_.emplace_back(std::move(key), std::move(value));
}

bool Element::has_attr(std::string_view key) const {
    for (const auto& [k, v] : attrs_) {
        if (k == key) return true;
    }
    return false;
}

const std::string& Element::attr(std::string_view key) const {
    for (const auto& [k, v] : attrs_) {
        if (k == key) return v;
    }
    throw Error("<" + name_ + ">: missing attribute '" + std::string(key) + "'");
}

std::string Element::attr_or(std::string_view key, std::string_view fallback) const {
    for (const auto& [k, v] : attrs_) {
        if (k == key) return v;
    }
    return std::string(fallback);
}

long long Element::attr_int(std::string_view key) const { return parse_int(attr(key)); }

Element& Element::add_child(std::string name) {
    children_.push_back(std::make_unique<Element>(std::move(name)));
    return *children_.back();
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
    std::vector<const Element*> out;
    for (const auto& c : children_) {
        if (c->name() == name) out.push_back(c.get());
    }
    return out;
}

const Element& Element::child(std::string_view name) const {
    const Element* found = child_opt(name);
    if (found == nullptr) throw Error("<" + name_ + ">: missing child <" + std::string(name) + ">");
    return *found;
}

const Element* Element::child_opt(std::string_view name) const {
    const Element* found = nullptr;
    for (const auto& c : children_) {
        if (c->name() == name) {
            if (found != nullptr) {
                throw Error("<" + name_ + ">: multiple <" + std::string(name) + "> children");
            }
            found = c.get();
        }
    }
    return found;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string escape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char ch : raw) {
        switch (ch) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&apos;"; break;
            default: out += ch;
        }
    }
    return out;
}

namespace {

void write_element(std::ostream& os, const Element& e, int depth) {
    const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    os << indent << '<' << e.name();
    for (const auto& [k, v] : e.attrs()) os << ' ' << k << "=\"" << escape(v) << '"';
    const bool has_text = !e.text().empty();
    if (e.children().empty() && !has_text) {
        os << "/>\n";
        return;
    }
    os << '>';
    if (has_text) os << escape(e.text());
    if (!e.children().empty()) {
        os << '\n';
        for (const auto& c : e.children()) write_element(os, *c, depth + 1);
        os << indent;
    }
    os << "</" << e.name() << ">\n";
}

}  // namespace

void Document::write(std::ostream& os) const {
    os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    write_element(os, *root_, 0);
}

std::string Document::to_string() const {
    std::ostringstream os;
    write(os);
    return os.str();
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view with line tracking for errors.
class Parser {
public:
    explicit Parser(std::string_view input) : in_(input) {}

    std::unique_ptr<Element> parse_document() {
        skip_prolog();
        auto root = parse_element();
        skip_misc();
        if (!at_end()) fail("trailing content after root element");
        return root;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        throw Error("xml parse error at line " + std::to_string(line_) + ": " + msg);
    }

    bool at_end() const { return pos_ >= in_.size(); }

    char peek() const {
        if (at_end()) fail("unexpected end of input");
        return in_[pos_];
    }

    char advance() {
        const char c = peek();
        ++pos_;
        if (c == '\n') ++line_;
        return c;
    }

    bool consume(std::string_view token) {
        if (in_.substr(pos_).substr(0, token.size()) != token) return false;
        for (std::size_t i = 0; i < token.size(); ++i) advance();
        return true;
    }

    void expect(std::string_view token) {
        if (!consume(token)) fail("expected '" + std::string(token) + "'");
    }

    void skip_ws() {
        while (!at_end() && std::isspace(static_cast<unsigned char>(in_[pos_]))) advance();
    }

    void skip_comment() {
        // positioned after "<!--"
        while (!consume("-->")) advance();
    }

    void skip_misc() {
        while (true) {
            skip_ws();
            if (consume("<!--")) {
                skip_comment();
            } else {
                return;
            }
        }
    }

    void skip_prolog() {
        skip_ws();
        if (consume("<?")) {
            while (!consume("?>")) advance();
        }
        skip_misc();
    }

    static bool is_name_char(char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
               c == ':';
    }

    std::string parse_name() {
        std::string name;
        while (!at_end() && is_name_char(in_[pos_])) name += advance();
        if (name.empty()) fail("expected a name");
        return name;
    }

    std::string parse_entity() {
        // positioned after '&'
        std::string ent;
        while (peek() != ';') ent += advance();
        advance();  // ';'
        if (ent == "amp") return "&";
        if (ent == "lt") return "<";
        if (ent == "gt") return ">";
        if (ent == "quot") return "\"";
        if (ent == "apos") return "'";
        fail("unknown entity '&" + ent + ";'");
    }

    std::string parse_attr_value() {
        const char quote = advance();
        if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
        std::string value;
        while (peek() != quote) {
            if (peek() == '&') {
                advance();
                value += parse_entity();
            } else {
                value += advance();
            }
        }
        advance();  // closing quote
        return value;
    }

    std::unique_ptr<Element> parse_element() {
        expect("<");
        auto elem = std::make_unique<Element>(parse_name());
        while (true) {
            skip_ws();
            if (consume("/>")) return elem;
            if (consume(">")) break;
            std::string key = parse_name();
            skip_ws();
            expect("=");
            skip_ws();
            elem->set_attr(std::move(key), parse_attr_value());
        }
        parse_content(*elem);
        return elem;
    }

    void parse_content(Element& elem) {
        while (true) {
            if (at_end()) fail("unterminated element <" + elem.name() + ">");
            if (consume("<!--")) {
                skip_comment();
            } else if (in_.substr(pos_).substr(0, 2) == "</") {
                expect("</");
                const std::string closing = parse_name();
                if (closing != elem.name()) {
                    fail("mismatched closing tag </" + closing + "> for <" + elem.name() + ">");
                }
                skip_ws();
                expect(">");
                return;
            } else if (peek() == '<') {
                auto child = parse_element();
                // Transfer ownership into the tree via add_child + move.
                Element& slot = elem.add_child(child->name());
                slot = std::move(*child);
            } else if (peek() == '&') {
                advance();
                elem.append_text(parse_entity());
            } else {
                std::string run;
                while (!at_end() && peek() != '<' && peek() != '&') run += advance();
                // Keep only runs that contain non-whitespace, to avoid
                // indentation noise accumulating as text.
                if (trim(run) != "") elem.append_text(run);
            }
        }
    }

    std::string_view in_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

}  // namespace

Document Document::parse(std::string_view input) {
    Parser parser(input);
    Document doc;
    doc.root_ = parser.parse_document();
    return doc;
}

}  // namespace revec::xml
