#include "revec/apps/arf.hpp"

#include <string>
#include <vector>

#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"
#include "revec/support/rng.hpp"

namespace revec::apps {

namespace {

dsl::Vector::Elems random_elems(XorShift& rng) {
    dsl::Vector::Elems e{};
    for (auto& c : e) c = ir::Complex(rng.unit(), rng.unit());
    return e;
}

}  // namespace

ir::Graph build_arf(unsigned seed) {
    dsl::Program p("arf");
    XorShift rng(seed == 0 ? 0x2545f491u : seed);
    const auto input = [&](const std::string& label) {
        return p.in_vector(random_elems(rng), label);
    };

    // Level 1: eight sample*coefficient products.
    std::vector<dsl::Vector> l1;
    for (int i = 0; i < 8; ++i) {
        l1.push_back(dsl::v_mul(input("x" + std::to_string(i)), input("c1_" + std::to_string(i))));
    }
    // Level 2: pairwise accumulation.
    std::vector<dsl::Vector> l2;
    for (int i = 0; i < 4; ++i) {
        l2.push_back(dsl::v_add(l1[static_cast<std::size_t>(2 * i)],
                                l1[static_cast<std::size_t>(2 * i + 1)]));
    }
    // Level 3: second coefficient stage.
    std::vector<dsl::Vector> l3;
    for (int i = 0; i < 4; ++i) {
        l3.push_back(dsl::v_mul(l2[static_cast<std::size_t>(i)], input("c3_" + std::to_string(i))));
    }
    // Level 4: bias accumulation.
    std::vector<dsl::Vector> l4;
    for (int i = 0; i < 4; ++i) {
        l4.push_back(dsl::v_add(l3[static_cast<std::size_t>(i)], input("b4_" + std::to_string(i))));
    }
    // Level 5: cross products of the two halves.
    std::vector<dsl::Vector> l5;
    l5.push_back(dsl::v_mul(l4[0], l4[2]));
    l5.push_back(dsl::v_mul(l4[1], l4[3]));
    // Level 6: bias accumulation.
    std::vector<dsl::Vector> l6;
    l6.push_back(dsl::v_add(l5[0], input("b6_0")));
    l6.push_back(dsl::v_add(l5[1], input("b6_1")));
    // Level 7: feedback coefficient products.
    std::vector<dsl::Vector> l7;
    l7.push_back(dsl::v_mul(l6[0], input("c7_0")));
    l7.push_back(dsl::v_mul(l6[1], input("c7_1")));
    // Level 8: output accumulation.
    const dsl::Vector y0 = dsl::v_add(l7[0], input("b8_0"));
    const dsl::Vector y1 = dsl::v_add(l7[1], input("b8_1"));
    p.mark_output(y0);
    p.mark_output(y1);
    return p.ir();
}

}  // namespace revec::apps
