#include "revec/apps/random_kernel.hpp"

#include <vector>

#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"
#include "revec/ir/validate.hpp"
#include "revec/support/rng.hpp"

namespace revec::apps {

namespace {

/// Wraps the shared generator with damped magnitudes to keep value growth
/// tame in deep multiply chains.
class Rng : public XorShift {
public:
    explicit Rng(unsigned seed) : XorShift(seed == 0 ? 0x5bd1e995u : seed) {}
    double unit() { return XorShift::unit() * 0.9; }
};

}  // namespace

ir::Graph build_random_kernel(const RandomKernelOptions& options) {
    dsl::Program p("random_" + std::to_string(options.seed));
    Rng rng(options.seed);

    std::vector<dsl::Vector> vectors;
    std::vector<dsl::Scalar> scalars;

    const auto fresh_vector = [&] {
        dsl::Vector::Elems e{};
        for (auto& c : e) c = ir::Complex(rng.unit(), rng.unit());
        vectors.push_back(p.in_vector(e, "vin" + std::to_string(vectors.size())));
    };
    for (int i = 0; i < 4; ++i) fresh_vector();
    scalars.push_back(p.in_scalar(ir::Complex(rng.unit(), rng.unit()), "sin0"));

    const auto rand_vec = [&]() -> const dsl::Vector& {
        return vectors[static_cast<std::size_t>(rng.below(static_cast<int>(vectors.size())))];
    };
    const auto rand_sca = [&]() -> const dsl::Scalar& {
        return scalars[static_cast<std::size_t>(rng.below(static_cast<int>(scalars.size())))];
    };

    int emitted = 0;
    while (emitted < options.num_ops) {
        const int kind = rng.below(14);
        switch (kind) {
            case 0: vectors.push_back(dsl::v_add(rand_vec(), rand_vec())); break;
            case 1: vectors.push_back(dsl::v_sub(rand_vec(), rand_vec())); break;
            case 2: vectors.push_back(dsl::v_mul(rand_vec(), rand_vec())); break;
            case 3: vectors.push_back(dsl::v_cmac(rand_vec(), rand_vec(), rand_vec())); break;
            case 4: vectors.push_back(dsl::v_scale(rand_vec(), rand_sca())); break;
            case 5: vectors.push_back(dsl::v_axpy(rand_vec(), rand_sca(), rand_vec())); break;
            case 6: scalars.push_back(dsl::v_dotP(rand_vec(), rand_vec())); break;
            case 7: scalars.push_back(dsl::v_squsum(rand_vec())); break;
            case 8: scalars.push_back(dsl::s_add(rand_sca(), rand_sca())); break;
            case 9: scalars.push_back(dsl::s_mul(rand_sca(), rand_sca())); break;
            case 10: scalars.push_back(dsl::index(rand_vec(), rng.below(ir::kVecLen))); break;
            case 11:
                if (options.use_fusable) {
                    const int which = rng.below(3);
                    if (which == 0) {
                        vectors.push_back(dsl::pre_conj(rand_vec()));
                    } else if (which == 1) {
                        vectors.push_back(dsl::pre_mask(rand_vec(), 1 + rng.below(15)));
                    } else {
                        vectors.push_back(dsl::post_sort(rand_vec()));
                    }
                } else {
                    vectors.push_back(dsl::v_add(rand_vec(), rand_vec()));
                }
                break;
            case 12:
                if (options.use_matrix) {
                    const dsl::Matrix m =
                        p.in_matrix({rand_vec(), rand_vec(), rand_vec(), rand_vec()});
                    if (rng.below(2) == 0) {
                        vectors.push_back(dsl::m_squsum(m));
                    } else {
                        const dsl::Matrix h = dsl::m_hermitian(m);
                        for (const dsl::Vector& row : h.rows()) vectors.push_back(row);
                    }
                } else {
                    vectors.push_back(dsl::v_sub(rand_vec(), rand_vec()));
                }
                break;
            default:
                vectors.push_back(
                    dsl::merge(rand_sca(), rand_sca(), rand_sca(), rand_sca()));
                break;
        }
        ++emitted;
        // Occasionally add a fresh input to keep parallelism available.
        if (rng.below(6) == 0) fresh_vector();
    }

    // Mark a handful of the youngest values as outputs.
    for (int i = 0; i < 3; ++i) {
        p.mark_output(vectors[vectors.size() - 1 - static_cast<std::size_t>(i) %
                                                       vectors.size()]);
    }
    p.mark_output(scalars.back());

    ir::validate_graph(p.ir());
    return p.ir();
}

}  // namespace revec::apps
