// MIMO detection front-end kernel (the application family the paper's EIT
// architecture was built for, §1): a matched-filter MMSE-style detector
//   z = H^H y            (Hermitian pre-stage + matrix-vector product)
//   e = per-stream channel energies (m_squsum of H^H)
//   s_i = z_i / e_i      (scalar accelerator divisions, via index/merge)
//   ranking = sort(|s|)  (post-processing sort, as in sorted-QRD detectors)
// Exercises every unit: matrix ops with fusable pre/post stages, the
// index/merge block, and the scalar divider.
#pragma once

#include "revec/ir/graph.hpp"

namespace revec::apps {

/// Build the detection kernel on a deterministic random channel and
/// received vector.
ir::Graph build_detect(unsigned seed = 77);

}  // namespace revec::apps
