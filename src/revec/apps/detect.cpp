#include "revec/apps/detect.hpp"

#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"
#include "revec/support/rng.hpp"

namespace revec::apps {


ir::Graph build_detect(unsigned seed) {
    dsl::Program p("mimo_detect");
    XorShift rng(seed == 0 ? 0xdecafbadu : seed);

    // Channel matrix H (rows) and received vector y.
    std::array<dsl::Vector::Elems, 4> h_rows;
    for (auto& row : h_rows) {
        for (auto& e : row) e = ir::Complex(rng.unit(), rng.unit());
    }
    const dsl::Matrix h = p.in_matrix(h_rows, "H");
    dsl::Vector::Elems yv;
    for (auto& e : yv) e = ir::Complex(rng.unit(), rng.unit());
    const dsl::Vector y = p.in_vector(yv, "y");

    // z = H^H y and per-stream energies. The hermitian feeds both the
    // matrix-vector product and the energy computation, so the merging pass
    // cannot fuse it away (two consumers) — a realistic shared pre-stage.
    const dsl::Matrix hh = dsl::m_hermitian(h);
    const dsl::Vector z = dsl::m_vmul(hh, y);
    const dsl::Vector e = dsl::m_squsum(hh);

    // Per-stream normalization on the scalar divider.
    std::array<dsl::Scalar, 4> est;
    for (int i = 0; i < 4; ++i) {
        est[static_cast<std::size_t>(i)] = dsl::s_div(dsl::index(z, i), dsl::index(e, i));
    }
    const dsl::Vector symbols = dsl::merge(est[0], est[1], est[2], est[3]);
    p.mark_output(symbols);

    // Detection ordering by estimated-symbol energy (sorted detectors).
    const dsl::Vector ranking = dsl::post_sort(symbols);
    p.mark_output(ranking);
    return p.ir();
}

}  // namespace revec::apps
