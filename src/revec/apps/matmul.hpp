// MATMUL kernel: listing 1 of the paper. Multiplies a 4x4 matrix with its
// transpose via 16 vector dot products whose scalar results are merged into
// four result vectors. The traced IR matches the paper's Fig. 3 and the
// MATMUL row of Table 3 exactly: |V| = 44, |E| = 68, |Cr.P| = 8.
#pragma once

#include "revec/ir/graph.hpp"

namespace revec::apps {

/// Build the MATMUL IR. `a` supplies the input matrix rows; defaults to the
/// hard-coded vectors of listing 1 ((1,2,3,4), (2,3,4,5), (3,4,5,6),
/// (4,5,6,7)).
ir::Graph build_matmul();
ir::Graph build_matmul(const std::array<std::array<ir::Complex, ir::kVecLen>, 4>& a);

}  // namespace revec::apps
