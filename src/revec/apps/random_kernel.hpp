// Random kernel generator: seeded, layered dataflow programs over the DSL
// op set. Used by the stress/property tests (every generated kernel must
// schedule, verify, encode, and simulate bit-exactly) and usable as a
// benchmark workload generator.
#pragma once

#include "revec/ir/graph.hpp"

namespace revec::apps {

struct RandomKernelOptions {
    unsigned seed = 1;
    int num_ops = 30;        ///< approximate operation count
    bool use_matrix = true;  ///< include matrix operations
    bool use_fusable = true; ///< include pre/post-stage operations
};

/// Build a random kernel. Deterministic in the options. The generated
/// graph is validated and avoids numerically unsafe operations (no
/// divisions), so reference evaluation is always well-defined.
ir::Graph build_random_kernel(const RandomKernelOptions& options);

}  // namespace revec::apps
