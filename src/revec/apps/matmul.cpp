#include "revec/apps/matmul.hpp"

#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"

namespace revec::apps {

ir::Graph build_matmul() {
    return build_matmul({{{1, 2, 3, 4}, {2, 3, 4, 5}, {3, 4, 5, 6}, {4, 5, 6, 7}}});
}

ir::Graph build_matmul(const std::array<std::array<ir::Complex, ir::kVecLen>, 4>& a) {
    dsl::Program p("matmul");
    const dsl::Matrix m = p.in_matrix(a, "A");

    for (int i = 0; i < 4; ++i) {
        std::array<dsl::Scalar, 4> scalars;
        for (int j = 0; j < 4; ++j) {
            // Listing 1, line 16: scalars(j) = A(i) v_dotP A(j).
            scalars[static_cast<std::size_t>(j)] = dsl::v_dotP(m(i), m(j));
        }
        const dsl::Vector row = dsl::merge(scalars[0], scalars[1], scalars[2], scalars[3]);
        p.mark_output(row);
    }
    return p.ir();
}

}  // namespace revec::apps
