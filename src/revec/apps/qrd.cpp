#include "revec/apps/qrd.hpp"

#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"
#include "revec/support/rng.hpp"

namespace revec::apps {

namespace {

ir::Complex next_complex(XorShift& rng) {
    const double re = rng.unit();
    const double im = rng.unit();
    return {re, im};
}

}  // namespace

ir::Graph build_qrd(const QrdOptions& options) {
    dsl::Program p("qrd");
    XorShift rng(options.seed);

    // Columns of the extended matrix A = [H; sigma*I], split top/bottom.
    std::array<dsl::Vector, 4> top;  // H columns
    std::array<dsl::Vector, 4> bot;  // sigma * e_j
    for (int j = 0; j < 4; ++j) {
        dsl::Vector::Elems h{};
        for (int i = 0; i < ir::kVecLen; ++i) {
            h[static_cast<std::size_t>(i)] = next_complex(rng);
        }
        top[static_cast<std::size_t>(j)] = p.in_vector(h, "h" + std::to_string(j));
        dsl::Vector::Elems e{};
        e[static_cast<std::size_t>(j)] = ir::Complex(options.sigma, 0);
        bot[static_cast<std::size_t>(j)] = p.in_vector(e, "sig" + std::to_string(j));
    }

    // Modified Gram-Schmidt over the extended columns.
    for (int k = 0; k < 4; ++k) {
        const auto ku = static_cast<std::size_t>(k);
        // ||a_k||^2 over all 8 elements.
        const dsl::Scalar nt = dsl::v_squsum(top[ku]);
        const dsl::Scalar nb = dsl::v_squsum(bot[ku]);
        const dsl::Scalar norm2 = dsl::s_add(nt, nb);
        // R[k][k] = ||a_k|| via the accelerator's square root.
        const dsl::Scalar rkk = dsl::s_sqrt(norm2);
        p.mark_output(rkk);
        // q_k = a_k / ||a_k|| using the reciprocal square root unit.
        const dsl::Scalar inv = dsl::s_rsqrt(norm2);
        const dsl::Vector qt = dsl::v_scale(top[ku], inv);
        const dsl::Vector qb = dsl::v_scale(bot[ku], inv);
        p.mark_output(qt);
        p.mark_output(qb);

        for (int j = k + 1; j < 4; ++j) {
            const auto ju = static_cast<std::size_t>(j);
            // R[k][j] = <a_j, q_k> over 8 elements.
            const dsl::Scalar dt = dsl::v_dotP(top[ju], qt);
            const dsl::Scalar db = dsl::v_dotP(bot[ju], qb);
            const dsl::Scalar rkj = dsl::s_add(dt, db);
            p.mark_output(rkj);
            // a_j <- a_j - R[k][j] * q_k (both halves).
            top[ju] = dsl::v_axpy(top[ju], rkj, qt);
            bot[ju] = dsl::v_axpy(bot[ju], rkj, qb);
        }
    }
    return p.ir();
}

}  // namespace revec::apps
