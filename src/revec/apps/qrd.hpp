// QRD kernel: Modified Gram-Schmidt based MMSE QR decomposition (paper §4.1,
// following Luethi et al. and Zhang's MMSE-QRD). The extended system matrix
// [H; sigma*I] is 8x4; each column is represented as two 4-element vectors
// (top = channel column, bottom = regularization row), so every length-8
// inner product is two v_dotP plus a scalar add on the accelerator.
//
// The original DSL source (written by the architecture's designer) is not
// available; this implementation reproduces the algorithm and the op mix.
// Paper IR: |V| = 143, |E| = 194, |Cr.P| = 169, #v_data = 49.
#pragma once

#include "revec/ir/graph.hpp"

namespace revec::apps {

/// Options for the QRD builder.
struct QrdOptions {
    /// MMSE regularization sigma (diagonal of the extension block).
    double sigma = 0.5;
    /// Seed for the deterministic pseudo-random channel matrix H.
    unsigned seed = 2015;
};

/// Build the MMSE-QRD IR on a deterministic random 4x4 complex channel.
ir::Graph build_qrd(const QrdOptions& options = {});

}  // namespace revec::apps
