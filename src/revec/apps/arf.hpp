// ARF kernel: the classic auto-regression-filter dataflow graph from the
// HLS benchmark suites, "modified to work on vectors as basic units instead
// of scalars" (paper §4.3): 16 vector multiplications and 12 vector
// additions in eight dependence levels, so the critical path is
// 8 * 7 = 56 cycles, matching the paper's |Cr.P| = 56 and |V| = 88.
#pragma once

#include "revec/ir/graph.hpp"

namespace revec::apps {

/// Build the vectorized ARF IR on deterministic pseudo-random inputs.
ir::Graph build_arf(unsigned seed = 7);

}  // namespace revec::apps
