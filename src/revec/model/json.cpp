#include "revec/model/json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::model {

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void append_ints(std::ostringstream& os, const std::vector<int>& xs) {
    os << '[';
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i > 0) os << ',';
        os << xs[i];
    }
    os << ']';
}

const char* unit_name(Unit u) {
    switch (u) {
        case Unit::VectorCore: return "vector_core";
        case Unit::Scalar: return "scalar";
        case Unit::IndexMerge: return "index_merge";
        case Unit::None: return "none";
    }
    REVEC_UNREACHABLE("bad Unit");
}

const char* bool_name(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string to_json(const KernelModel& m) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": ";
    append_escaped(os, m.name);
    os << ",\n";

    os << "  \"geometry\": {\"banks\": " << m.geometry.banks
       << ", \"banks_per_page\": " << m.geometry.banks_per_page
       << ", \"lines\": " << m.geometry.lines << "},\n";
    os << "  \"caps\": {\"vector_lanes\": " << m.caps.vector_lanes
       << ", \"scalar_units\": " << m.caps.scalar_units
       << ", \"index_merge_units\": " << m.caps.index_merge_units
       << ", \"max_vector_reads\": " << m.caps.max_vector_reads
       << ", \"max_vector_writes\": " << m.caps.max_vector_writes
       << ", \"reconfig_cycles\": " << m.caps.reconfig_cycles << "},\n";

    os << "  \"num_slots\": " << m.num_slots << ",\n";
    os << "  \"horizon\": " << m.horizon << ",\n";
    os << "  \"critical_path\": " << m.critical_path << ",\n";
    os << "  \"memory_allocation\": " << bool_name(m.memory_allocation) << ",\n";
    os << "  \"three_phase_search\": " << bool_name(m.three_phase_search) << ",\n";
    os << "  \"enforce_port_limits\": " << bool_name(m.enforce_port_limits) << ",\n";
    os << "  \"lifetime_includes_last_read\": " << bool_name(m.lifetime_includes_last_read)
       << ",\n";

    os << "  \"config_keys\": [";
    for (std::size_t i = 0; i < m.config_keys.size(); ++i) {
        if (i > 0) os << ", ";
        append_escaped(os, m.config_keys[i]);
    }
    os << "],\n";

    os << "  \"ops\": ";
    append_ints(os, m.ops);
    os << ",\n  \"vector_ops\": ";
    append_ints(os, m.vector_ops);
    os << ",\n  \"vdata\": ";
    append_ints(os, m.vdata);
    os << ",\n  \"inputs\": ";
    append_ints(os, m.inputs);
    os << ",\n  \"asap\": ";
    append_ints(os, m.asap);
    os << ",\n  \"alap\": ";
    append_ints(os, m.alap);
    os << ",\n";

    if (!m.fixed_starts.empty()) {
        os << "  \"fixed_starts\": ";
        append_ints(os, m.fixed_starts);
        os << ",\n";
    }
    if (!m.frozen_starts.empty()) {
        os << "  \"frozen_starts\": ";
        append_ints(os, m.frozen_starts);
        os << ",\n";
    }
    if (m.modulo.has_value()) {
        os << "  \"modulo\": {\"ii\": " << m.modulo->ii
           << ", \"max_stage\": " << m.modulo->max_stage
           << ", \"minimize_reconfigs\": " << bool_name(m.modulo->minimize_reconfigs)
           << ", \"reconfig_budget\": " << m.modulo->reconfig_budget << "},\n";
    }

    os << "  \"nodes\": [\n";
    for (std::size_t i = 0; i < m.nodes.size(); ++i) {
        const ModelNode& n = m.nodes[i];
        os << "    {\"id\": " << n.id << ", \"is_op\": " << bool_name(n.is_op)
           << ", \"cat\": ";
        append_escaped(os, n.cat);
        os << ", \"op\": ";
        append_escaped(os, n.op);
        os << ", \"latency\": " << n.latency << ", \"duration\": " << n.duration
           << ", \"lanes\": " << n.lanes << ", \"unit\": \"" << unit_name(n.unit)
           << "\", \"config\": " << n.config;
        os << ", \"preds\": ";
        append_ints(os, n.preds);
        os << ", \"succs\": ";
        append_ints(os, n.succs);
        if (n.is_op) {
            os << ", \"vector_inputs\": ";
            append_ints(os, n.vector_inputs);
            os << ", \"vector_outputs\": ";
            append_ints(os, n.vector_outputs);
        } else {
            os << ", \"is_input\": " << bool_name(n.is_input)
               << ", \"persists\": " << bool_name(n.persists)
               << ", \"lifetime_extra\": " << n.lifetime_extra;
        }
        os << "}" << (i + 1 < m.nodes.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"edges\": [\n";
    for (std::size_t i = 0; i < m.edges.size(); ++i) {
        const ModelEdge& e = m.edges[i];
        os << "    {\"src\": " << e.src << ", \"dst\": " << e.dst
           << ", \"latency\": " << e.latency << ", \"kind\": \""
           << (e.kind == EdgeKind::DataProduce ? "data_produce" : "precedence") << "\"}"
           << (i + 1 < m.edges.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

void save_json(const KernelModel& m, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw Error("cannot write model dump to " + path);
    out << to_json(m);
    if (!out) throw Error("failed writing model dump to " + path);
}

}  // namespace revec::model
