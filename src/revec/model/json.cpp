#include "revec/model/json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "revec/support/assert.hpp"

namespace revec::model {

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void append_ints(std::ostringstream& os, const std::vector<int>& xs) {
    os << '[';
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i > 0) os << ',';
        os << xs[i];
    }
    os << ']';
}

const char* unit_name(Unit u) {
    switch (u) {
        case Unit::VectorCore: return "vector_core";
        case Unit::Scalar: return "scalar";
        case Unit::IndexMerge: return "index_merge";
        case Unit::None: return "none";
    }
    REVEC_UNREACHABLE("bad Unit");
}

const char* bool_name(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string to_json(const KernelModel& m) {
    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": ";
    append_escaped(os, m.name);
    os << ",\n";

    os << "  \"geometry\": {\"banks\": " << m.geometry.banks
       << ", \"banks_per_page\": " << m.geometry.banks_per_page
       << ", \"lines\": " << m.geometry.lines << "},\n";
    os << "  \"caps\": {\"vector_lanes\": " << m.caps.vector_lanes
       << ", \"scalar_units\": " << m.caps.scalar_units
       << ", \"index_merge_units\": " << m.caps.index_merge_units
       << ", \"max_vector_reads\": " << m.caps.max_vector_reads
       << ", \"max_vector_writes\": " << m.caps.max_vector_writes
       << ", \"reconfig_cycles\": " << m.caps.reconfig_cycles << "},\n";

    os << "  \"num_slots\": " << m.num_slots << ",\n";
    os << "  \"horizon\": " << m.horizon << ",\n";
    os << "  \"critical_path\": " << m.critical_path << ",\n";
    os << "  \"memory_allocation\": " << bool_name(m.memory_allocation) << ",\n";
    os << "  \"three_phase_search\": " << bool_name(m.three_phase_search) << ",\n";
    os << "  \"enforce_port_limits\": " << bool_name(m.enforce_port_limits) << ",\n";
    os << "  \"lifetime_includes_last_read\": " << bool_name(m.lifetime_includes_last_read)
       << ",\n";

    os << "  \"config_keys\": [";
    for (std::size_t i = 0; i < m.config_keys.size(); ++i) {
        if (i > 0) os << ", ";
        append_escaped(os, m.config_keys[i]);
    }
    os << "],\n";

    os << "  \"ops\": ";
    append_ints(os, m.ops);
    os << ",\n  \"vector_ops\": ";
    append_ints(os, m.vector_ops);
    os << ",\n  \"vdata\": ";
    append_ints(os, m.vdata);
    os << ",\n  \"inputs\": ";
    append_ints(os, m.inputs);
    os << ",\n  \"asap\": ";
    append_ints(os, m.asap);
    os << ",\n  \"alap\": ";
    append_ints(os, m.alap);
    os << ",\n";

    if (!m.fixed_starts.empty()) {
        os << "  \"fixed_starts\": ";
        append_ints(os, m.fixed_starts);
        os << ",\n";
    }
    if (!m.frozen_starts.empty()) {
        os << "  \"frozen_starts\": ";
        append_ints(os, m.frozen_starts);
        os << ",\n";
    }
    if (m.modulo.has_value()) {
        os << "  \"modulo\": {\"ii\": " << m.modulo->ii
           << ", \"max_stage\": " << m.modulo->max_stage
           << ", \"minimize_reconfigs\": " << bool_name(m.modulo->minimize_reconfigs)
           << ", \"reconfig_budget\": " << m.modulo->reconfig_budget << "},\n";
    }

    os << "  \"nodes\": [\n";
    for (std::size_t i = 0; i < m.nodes.size(); ++i) {
        const ModelNode& n = m.nodes[i];
        os << "    {\"id\": " << n.id << ", \"is_op\": " << bool_name(n.is_op)
           << ", \"cat\": ";
        append_escaped(os, n.cat);
        os << ", \"op\": ";
        append_escaped(os, n.op);
        os << ", \"latency\": " << n.latency << ", \"duration\": " << n.duration
           << ", \"lanes\": " << n.lanes << ", \"unit\": \"" << unit_name(n.unit)
           << "\", \"config\": " << n.config;
        os << ", \"preds\": ";
        append_ints(os, n.preds);
        os << ", \"succs\": ";
        append_ints(os, n.succs);
        if (n.is_op) {
            os << ", \"vector_inputs\": ";
            append_ints(os, n.vector_inputs);
            os << ", \"vector_outputs\": ";
            append_ints(os, n.vector_outputs);
        } else {
            os << ", \"is_input\": " << bool_name(n.is_input)
               << ", \"persists\": " << bool_name(n.persists)
               << ", \"lifetime_extra\": " << n.lifetime_extra;
        }
        os << "}" << (i + 1 < m.nodes.size() ? "," : "") << "\n";
    }
    os << "  ],\n";

    os << "  \"edges\": [\n";
    for (std::size_t i = 0; i < m.edges.size(); ++i) {
        const ModelEdge& e = m.edges[i];
        os << "    {\"src\": " << e.src << ", \"dst\": " << e.dst
           << ", \"latency\": " << e.latency << ", \"kind\": \""
           << (e.kind == EdgeKind::DataProduce ? "data_produce" : "precedence") << "\"}"
           << (i + 1 < m.edges.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

void save_json(const KernelModel& m, const std::string& path) {
    std::ofstream out(path);
    if (!out) throw Error("cannot write model dump to " + path);
    out << to_json(m);
    if (!out) throw Error("failed writing model dump to " + path);
}

namespace {

using json::Value;

[[noreturn]] void bad_field(const std::string& key, const char* context) {
    throw Error("kernel model JSON: missing or mistyped field '" + key + "' (" + context +
                ")");
}

const Value& require(const Value& obj, const std::string& key, Value::Type type,
                     const char* context) {
    const Value* v = obj.find(key);
    if (v == nullptr || !v->is(type)) bad_field(key, context);
    return *v;
}

int get_int(const Value& obj, const std::string& key, const char* context) {
    return static_cast<int>(require(obj, key, Value::Type::Number, context).number);
}

bool get_bool(const Value& obj, const std::string& key, const char* context) {
    return require(obj, key, Value::Type::Bool, context).boolean;
}

std::vector<int> get_ints(const Value& obj, const std::string& key, const char* context) {
    const Value& arr = require(obj, key, Value::Type::Array, context);
    std::vector<int> out;
    out.reserve(arr.array.size());
    for (const Value& v : arr.array) {
        if (!v.is(Value::Type::Number)) bad_field(key, context);
        out.push_back(static_cast<int>(v.number));
    }
    return out;
}

Unit parse_unit(const std::string& s) {
    if (s == "vector_core") return Unit::VectorCore;
    if (s == "scalar") return Unit::Scalar;
    if (s == "index_merge") return Unit::IndexMerge;
    if (s == "none") return Unit::None;
    throw Error("kernel model JSON: unknown unit '" + s + "'");
}

}  // namespace

KernelModel from_json(const json::Value& doc) {
    if (!doc.is(Value::Type::Object)) throw Error("kernel model JSON: not an object");
    KernelModel m;
    m.name = require(doc, "name", Value::Type::String, "model").str;

    const Value& geo = require(doc, "geometry", Value::Type::Object, "model");
    m.geometry.banks = get_int(geo, "banks", "geometry");
    m.geometry.banks_per_page = get_int(geo, "banks_per_page", "geometry");
    m.geometry.lines = get_int(geo, "lines", "geometry");

    const Value& caps = require(doc, "caps", Value::Type::Object, "model");
    m.caps.vector_lanes = get_int(caps, "vector_lanes", "caps");
    m.caps.scalar_units = get_int(caps, "scalar_units", "caps");
    m.caps.index_merge_units = get_int(caps, "index_merge_units", "caps");
    m.caps.max_vector_reads = get_int(caps, "max_vector_reads", "caps");
    m.caps.max_vector_writes = get_int(caps, "max_vector_writes", "caps");
    m.caps.reconfig_cycles = get_int(caps, "reconfig_cycles", "caps");

    m.num_slots = get_int(doc, "num_slots", "model");
    m.horizon = get_int(doc, "horizon", "model");
    m.critical_path = get_int(doc, "critical_path", "model");
    m.memory_allocation = get_bool(doc, "memory_allocation", "model");
    m.three_phase_search = get_bool(doc, "three_phase_search", "model");
    m.enforce_port_limits = get_bool(doc, "enforce_port_limits", "model");
    m.lifetime_includes_last_read = get_bool(doc, "lifetime_includes_last_read", "model");

    const Value& keys = require(doc, "config_keys", Value::Type::Array, "model");
    for (const Value& k : keys.array) {
        if (!k.is(Value::Type::String)) bad_field("config_keys", "model");
        m.config_keys.push_back(k.str);
    }

    m.ops = get_ints(doc, "ops", "model");
    m.vector_ops = get_ints(doc, "vector_ops", "model");
    m.vdata = get_ints(doc, "vdata", "model");
    m.inputs = get_ints(doc, "inputs", "model");
    m.asap = get_ints(doc, "asap", "model");
    m.alap = get_ints(doc, "alap", "model");

    if (doc.find("fixed_starts") != nullptr) {
        m.fixed_starts = get_ints(doc, "fixed_starts", "model");
    }
    if (doc.find("frozen_starts") != nullptr) {
        m.frozen_starts = get_ints(doc, "frozen_starts", "model");
    }
    if (const Value* mod = doc.find("modulo"); mod != nullptr) {
        if (!mod->is(Value::Type::Object)) bad_field("modulo", "model");
        ModuloWrap wrap;
        wrap.ii = get_int(*mod, "ii", "modulo");
        wrap.max_stage = get_int(*mod, "max_stage", "modulo");
        wrap.minimize_reconfigs = get_bool(*mod, "minimize_reconfigs", "modulo");
        wrap.reconfig_budget = get_int(*mod, "reconfig_budget", "modulo");
        m.modulo = wrap;
    }

    const Value& nodes = require(doc, "nodes", Value::Type::Array, "model");
    m.nodes.reserve(nodes.array.size());
    for (const Value& nv : nodes.array) {
        if (!nv.is(Value::Type::Object)) bad_field("nodes", "model");
        ModelNode n;
        n.id = get_int(nv, "id", "node");
        n.is_op = get_bool(nv, "is_op", "node");
        n.cat = require(nv, "cat", Value::Type::String, "node").str;
        n.op = require(nv, "op", Value::Type::String, "node").str;
        n.latency = get_int(nv, "latency", "node");
        n.duration = get_int(nv, "duration", "node");
        n.lanes = get_int(nv, "lanes", "node");
        n.unit = parse_unit(require(nv, "unit", Value::Type::String, "node").str);
        n.config = get_int(nv, "config", "node");
        n.preds = get_ints(nv, "preds", "node");
        n.succs = get_ints(nv, "succs", "node");
        if (n.is_op) {
            n.vector_inputs = get_ints(nv, "vector_inputs", "node");
            n.vector_outputs = get_ints(nv, "vector_outputs", "node");
        } else {
            n.is_input = get_bool(nv, "is_input", "node");
            n.persists = get_bool(nv, "persists", "node");
            n.lifetime_extra = get_int(nv, "lifetime_extra", "node");
        }
        if (n.id != static_cast<int>(m.nodes.size())) {
            throw Error("kernel model JSON: node ids must be dense and in order");
        }
        m.nodes.push_back(std::move(n));
    }
    // is_vector_data is not serialized; for data nodes it is equivalent to
    // vdata membership (lower_ir pushes exactly the VectorData nodes there).
    for (const int id : m.vdata) {
        if (id < 0 || id >= m.num_nodes()) {
            throw Error("kernel model JSON: vdata id out of range");
        }
        m.nodes[static_cast<std::size_t>(id)].is_vector_data = true;
    }

    const Value& edges = require(doc, "edges", Value::Type::Array, "model");
    m.edges.reserve(edges.array.size());
    for (const Value& ev : edges.array) {
        if (!ev.is(Value::Type::Object)) bad_field("edges", "model");
        ModelEdge e;
        e.src = get_int(ev, "src", "edge");
        e.dst = get_int(ev, "dst", "edge");
        e.latency = get_int(ev, "latency", "edge");
        const std::string& kind = require(ev, "kind", Value::Type::String, "edge").str;
        if (kind == "data_produce") {
            e.kind = EdgeKind::DataProduce;
        } else if (kind == "precedence") {
            e.kind = EdgeKind::Precedence;
        } else {
            throw Error("kernel model JSON: unknown edge kind '" + kind + "'");
        }
        m.edges.push_back(e);
    }

    const auto n = static_cast<std::size_t>(m.num_nodes());
    if (m.asap.size() != n || m.alap.size() != n ||
        (!m.fixed_starts.empty() && m.fixed_starts.size() != n) ||
        (!m.frozen_starts.empty() && m.frozen_starts.size() != n)) {
        throw Error("kernel model JSON: per-node array size mismatch");
    }
    return m;
}

KernelModel from_json(const std::string& text) {
    return from_json(json::parse(text));
}

std::uint64_t canonical_hash(const KernelModel& m) {
    const std::string bytes = to_json(m);
    // FNV-1a, 64-bit: stable across platforms and runs, no seed.
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace revec::model
