#include "revec/model/fingerprint.hpp"

#include <algorithm>
#include <string>
#include <tuple>

namespace revec::model {

namespace {

/// FNV-1a accumulator, same constants as canonical_hash so both hashes
/// share their platform-stability story.
struct Fnv {
    std::uint64_t h = 14695981039346656037ull;
    void byte(unsigned char b) {
        h ^= b;
        h *= 1099511628211ull;
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
    }
    void i32(int v) { u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))); }
    void str(const std::string& s) {
        for (const char c : s) byte(static_cast<unsigned char>(c));
        byte(0xff);  // terminator so "ab","c" != "a","bc"
    }
};

const std::string& config_key_of(const KernelModel& m, const ModelNode& n) {
    static const std::string kNone;
    if (n.config < 0 || n.config >= static_cast<int>(m.config_keys.size())) return kNone;
    return m.config_keys[static_cast<std::size_t>(n.config)];
}

/// The structural tuple of one node — everything structural_fingerprint
/// hashes per node and diff() compares for "same operation".
bool same_structure(const KernelModel& ma, const ModelNode& a, const KernelModel& mb,
                    const ModelNode& b) {
    return a.is_op == b.is_op && a.is_vector_data == b.is_vector_data && a.op == b.op &&
           a.unit == b.unit && a.lanes == b.lanes &&
           config_key_of(ma, a) == config_key_of(mb, b);
}

bool same_timing(const ModelNode& a, const ModelNode& b) {
    return a.latency == b.latency && a.duration == b.duration &&
           a.lifetime_extra == b.lifetime_extra;
}

using EdgeTriple = std::tuple<int, int, int>;

std::vector<EdgeTriple> edge_triples(const KernelModel& m) {
    std::vector<EdgeTriple> out;
    out.reserve(m.edges.size());
    for (const ModelEdge& e : m.edges) {
        out.emplace_back(e.src, e.dst, e.kind == EdgeKind::DataProduce ? 1 : 0);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool same_semantics(const KernelModel& a, const KernelModel& b) {
    return a.memory_allocation == b.memory_allocation &&
           a.enforce_port_limits == b.enforce_port_limits &&
           a.lifetime_includes_last_read == b.lifetime_includes_last_read &&
           a.modulo.has_value() == b.modulo.has_value() &&
           a.fixed_starts.empty() == b.fixed_starts.empty() &&
           a.frozen_starts.empty() == b.frozen_starts.empty();
}

bool same_geometry_knobs(const KernelModel& a, const KernelModel& b) {
    const bool base = a.geometry.banks == b.geometry.banks &&
                      a.geometry.banks_per_page == b.geometry.banks_per_page &&
                      a.geometry.lines == b.geometry.lines &&
                      a.num_slots == b.num_slots &&
                      a.caps.vector_lanes == b.caps.vector_lanes &&
                      a.caps.scalar_units == b.caps.scalar_units &&
                      a.caps.index_merge_units == b.caps.index_merge_units &&
                      a.caps.max_vector_reads == b.caps.max_vector_reads &&
                      a.caps.max_vector_writes == b.caps.max_vector_writes &&
                      a.caps.reconfig_cycles == b.caps.reconfig_cycles;
    if (!base) return false;
    if (a.modulo.has_value() && b.modulo.has_value()) {
        return a.modulo->ii == b.modulo->ii &&
               a.modulo->minimize_reconfigs == b.modulo->minimize_reconfigs &&
               a.modulo->reconfig_budget == b.modulo->reconfig_budget;
    }
    return true;
}

}  // namespace

std::uint64_t structural_fingerprint(const KernelModel& m) {
    Fnv f;
    // Geometry class: which constraint families the model carries, not the
    // constants they are parameterized with.
    f.byte(m.memory_allocation ? 1 : 0);
    f.byte(m.enforce_port_limits ? 1 : 0);
    f.byte(m.lifetime_includes_last_read ? 1 : 0);
    f.byte(m.modulo.has_value() ? 1 : 0);
    f.byte(m.fixed_starts.empty() ? 0 : 1);
    f.byte(m.frozen_starts.empty() ? 0 : 1);

    f.i32(m.num_nodes());
    for (const ModelNode& n : m.nodes) {
        f.byte(n.is_op ? 1 : 0);
        f.byte(n.is_vector_data ? 1 : 0);
        f.str(n.op);
        f.i32(static_cast<int>(n.unit));
        f.i32(n.lanes);
        f.str(config_key_of(m, n));
    }

    f.i32(static_cast<int>(m.edges.size()));
    for (const EdgeTriple& e : edge_triples(m)) {
        f.i32(std::get<0>(e));
        f.i32(std::get<1>(e));
        f.byte(static_cast<unsigned char>(std::get<2>(e)));
    }
    return f.h;
}

bool ModelDelta::compatible() const {
    if (!comparable || semantics_changed) return false;
    const int churn = static_cast<int>(edited_nodes.size() + added_nodes.size() +
                                       removed_nodes.size());
    const int budget = std::max(1, node_count_b / 4);
    if (churn > budget) return false;
    // Edge churn beyond what the node churn explains means the dependency
    // structure was rewired wholesale; the donor's shape is stale.
    return edges_added + edges_removed <= 6 * churn;
}

int ModelDelta::distance() const {
    const int structural = 4 * static_cast<int>(edited_nodes.size()) +
                           6 * static_cast<int>(added_nodes.size() + removed_nodes.size()) +
                           edges_added + edges_removed;
    return structural + (geometry_changed ? 8 : 0) + (semantics_changed ? 64 : 0);
}

ModelDelta diff(const KernelModel& a, const KernelModel& b) {
    ModelDelta d;
    d.node_count_a = a.num_nodes();
    d.node_count_b = b.num_nodes();

    const int mapped = std::min(d.node_count_a, d.node_count_b);
    d.comparable = true;
    for (int id = 0; id < mapped; ++id) {
        const ModelNode& na = a.node(id);
        const ModelNode& nb = b.node(id);
        if (na.is_op != nb.is_op || na.is_vector_data != nb.is_vector_data) {
            d.comparable = false;
        }
        if (!same_structure(a, na, b, nb) || !same_timing(na, nb)) {
            d.edited_nodes.push_back(id);
        }
    }
    for (int id = mapped; id < d.node_count_b; ++id) d.added_nodes.push_back(id);
    for (int id = mapped; id < d.node_count_a; ++id) d.removed_nodes.push_back(id);

    // Edge churn over (src, dst, kind) multisets. Edges touching
    // added/removed ids naturally land in the respective count.
    const std::vector<EdgeTriple> ea = edge_triples(a);
    const std::vector<EdgeTriple> eb = edge_triples(b);
    std::vector<EdgeTriple> only_a;
    std::vector<EdgeTriple> only_b;
    std::set_difference(ea.begin(), ea.end(), eb.begin(), eb.end(),
                        std::back_inserter(only_a));
    std::set_difference(eb.begin(), eb.end(), ea.begin(), ea.end(),
                        std::back_inserter(only_b));
    d.edges_removed = static_cast<int>(only_a.size());
    d.edges_added = static_cast<int>(only_b.size());

    d.semantics_changed = !same_semantics(a, b);
    d.geometry_changed = !same_geometry_knobs(a, b);

    // Bound constants over the mapped prefix plus the horizon itself.
    if (b.horizon < a.horizon) d.bounds_tightened = true;
    if (b.horizon > a.horizon) d.bounds_loosened = true;
    for (int id = 0; id < mapped; ++id) {
        const auto i = static_cast<std::size_t>(id);
        if (i < a.asap.size() && i < b.asap.size()) {
            if (b.asap[i] > a.asap[i]) d.bounds_tightened = true;
            if (b.asap[i] < a.asap[i]) d.bounds_loosened = true;
        }
        if (i < a.alap.size() && i < b.alap.size()) {
            if (b.alap[i] < a.alap[i]) d.bounds_tightened = true;
            if (b.alap[i] > a.alap[i]) d.bounds_loosened = true;
        }
    }
    return d;
}

}  // namespace revec::model
