// Structural identity and typed diffing of KernelModels (DESIGN §5k), the
// model-layer half of incremental re-solve: canonical_hash (json.hpp) keys
// byte-exact duplicates, structural_fingerprint keys *near*-duplicates —
// models that differ only in timing/lifetime/bound constants or a handful
// of edits hash equal, so the tier-2 schedule cache can retrieve donor
// schedules for them. diff() then produces the typed ModelDelta the
// adaptation layer (heur/adapt.hpp) consumes: which nodes were edited,
// added, or removed, whether geometry knobs or bounds moved, and whether
// the pair is close enough to repurpose a schedule at all.
#pragma once

#include <cstdint>
#include <vector>

#include "revec/model/kernel_model.hpp"

namespace revec::model {

/// Stable 64-bit hash of a model's *structure*: node count, the per-node
/// op multiset (is_op / is_vector_data / op name / unit / lanes / config
/// key), edge topology (src, dst, kind — not the latency an edge carries),
/// and the geometry class (which constraint families apply:
/// memory_allocation, port limits, lifetime semantics, modulo presence,
/// pinned-start modes). Deliberately invariant to every timing, lifetime,
/// and bound constant — latencies, durations, lifetime_extra, ASAP/ALAP,
/// horizon, critical path — and to the concrete geometry *knobs* (banks,
/// lines, num_slots, machine caps, modulo II), which diff() tracks
/// instead. Two models with equal fingerprints are candidates for schedule
/// reuse; they are not necessarily equal models.
std::uint64_t structural_fingerprint(const KernelModel& m);

/// Typed difference between two KernelModels under the identity node
/// mapping (node ids are dense and ordered in both, so id i in `a` maps to
/// id i in `b`; ids beyond the shorter model are additions/removals).
struct ModelDelta {
    /// The identity mapping is meaningful: no mapped node flips its kind
    /// (is_op / is_vector_data). When false every other field is still
    /// filled best-effort but compatible() is always false.
    bool comparable = false;

    int node_count_a = 0;
    int node_count_b = 0;

    /// Mapped node ids whose operation changed: op name, unit, lanes,
    /// config key, latency, duration, or lifetime_extra. (Timing-only
    /// edits land here too — they leave the fingerprint alone but the
    /// adaptation layer must re-place the node.)
    std::vector<int> edited_nodes;
    std::vector<int> added_nodes;    ///< ids present only in b
    std::vector<int> removed_nodes;  ///< ids present only in a

    /// Edge-topology churn over (src, dst, kind) triples; edge latencies
    /// are ignored (they mirror the source node's latency, an edit).
    int edges_added = 0;
    int edges_removed = 0;

    /// Geometry knobs moved: memory geometry, machine caps, num_slots, or
    /// the modulo II/budget constants. Adaptation re-allocates slots from
    /// scratch, so knob changes stay compatible — the verifier gates.
    bool geometry_changed = false;

    /// Bound constants moved (horizon / ASAP / ALAP): b tighter than a
    /// somewhere, b looser than a somewhere. Both can hold at once.
    bool bounds_tightened = false;
    bool bounds_loosened = false;

    /// Constraint-family semantics differ — memory_allocation, port
    /// limits, lifetime definition, modulo presence, fixed/frozen starts.
    /// A donor schedule's feasibility story does not transfer across such
    /// a change, so it forces incompatibility.
    bool semantics_changed = false;

    /// Cheap go/no-go for schedule adaptation: comparable, same
    /// constraint-family semantics, and bounded structural churn (edits +
    /// additions + removals no more than a quarter of the target's nodes,
    /// edge churn in proportion). Compatibility is about *worth trying* —
    /// the adapted schedule is still independently verified.
    bool compatible() const;

    /// Scalar edit distance for nearest-donor selection; 0 iff the models
    /// differ at most in bounds. Lower is closer.
    int distance() const;
};

/// Diff `a` (the donor/cached side) against `b` (the requested side).
ModelDelta diff(const KernelModel& a, const KernelModel& b);

}  // namespace revec::model
