// The single CP emitter: posts one KernelModel into a cp::Store — the flat
// §3.3-§3.5 model (eqs. 1-11 plus port limits) or, when the model carries a
// ModuloWrap, the §4.3 modulo model over residues and stages. Both
// schedule_kernel and the modulo pipeline call this one function, so the
// duplicated channeling blocks of the historical per-consumer builders are
// gone and nogood / LNS work gets one stable table of variable handles.
//
// Emission is deterministic: variable creation order and propagator posting
// order are a pure function of the KernelModel, so any emission's handles
// index the solution vector of a solve over any other emission of the same
// model (the portfolio re-posts per worker through this property), and the
// search tree replays node-for-node across emissions.
#pragma once

#include <map>
#include <vector>

#include "revec/cp/search.hpp"
#include "revec/cp/store.hpp"
#include "revec/model/kernel_model.hpp"

namespace revec::model {

/// Variable handles of one emission. Which fields are populated depends on
/// the model: flat models fill start/slot_of/makespan; modulo models fill
/// start/residue/stage and (when minimizing) reconfig_count.
struct VarTable {
    std::vector<cp::IntVar> start;      ///< per node id
    std::map<int, cp::IntVar> slot_of;  ///< vector-data node id -> slot var
    std::vector<cp::IntVar> residue;    ///< per node id (invalid for data nodes)
    std::vector<cp::IntVar> stage;      ///< per node id (invalid for data nodes)
    cp::IntVar makespan;                ///< flat objective (eq. 5)
    cp::IntVar reconfig_count;          ///< modulo objective when minimizing R
    std::vector<cp::Phase> phases;
    /// Contradiction found while posting: a modulo reconfiguration budget
    /// below the lower bound, or a frozen_starts value outside the model
    /// bounds (LNS repair — the round is rejected).
    bool infeasible = false;
};

/// Post `m` into `store` and return the variable handles and search phases.
/// Throws revec::Error when m.fixed_starts is malformed or conflicts with
/// the model bounds.
VarTable emit_cp(cp::Store& store, const KernelModel& m);

}  // namespace revec::model
