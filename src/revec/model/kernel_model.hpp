// Solver-agnostic scheduling model: one plain-data description of a kernel
// scheduling problem (the paper's eqs. 1-11), built from the normalized IR
// by a single lower_ir() entry point. Every consumer of the formulation —
// the CP emitter (emit_cp.hpp), the heuristic list scheduler / slot
// allocator / IMS (revec/heur), and the schedule checker (check.hpp) —
// reads this model instead of re-deriving demands from the IR, so the
// formulation lives in exactly one place and model and checker cannot
// drift.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "revec/arch/spec.hpp"
#include "revec/ir/graph.hpp"

namespace revec::model {

/// Execution unit an operation issues on (eq. 2 and the scalar /
/// index-merge unit capacities). Data nodes carry Unit::None.
enum class Unit { VectorCore, Scalar, IndexMerge, None };

/// Paper-equation semantics of one dependency edge.
enum class EdgeKind {
    Precedence,   ///< eq. 1: dst starts no earlier than src start + latency
    DataProduce,  ///< eq. 4: dst (a produced data node) starts exactly at
                  ///< src start + latency
};

struct ModelEdge {
    int src = -1;
    int dst = -1;
    int latency = 0;  ///< the source node's latency
    EdgeKind kind = EdgeKind::Precedence;
};

/// One node of the scheduling problem, indexed by IR node id. Plain data:
/// timing, resource demand, adjacency, and lifetime endpoints are all
/// precomputed by lower_ir.
struct ModelNode {
    int id = -1;
    bool is_op = false;
    bool is_vector_data = false;
    std::string cat;  ///< IR category name (diagnostics only)
    std::string op;   ///< operation name; empty for data nodes

    // Timing and resource demand under the lowered architecture.
    int latency = 0;
    int duration = 0;
    int lanes = 0;  ///< vector lanes occupied; 0 for non-vector-core nodes
    Unit unit = Unit::None;
    int config = -1;  ///< dense configuration id; -1 unless unit == VectorCore

    // Adjacency by node id, preserving the IR's edge insertion order.
    std::vector<int> preds;
    std::vector<int> succs;
    std::vector<int> vector_inputs;   ///< VectorData preds: reads at issue (eqs. 7/8)
    std::vector<int> vector_outputs;  ///< VectorData succs: writes at completion (eq. 9)

    // Lifetime endpoints (eq. 10) for data nodes.
    bool is_input = false;   ///< no producer: start pinned to 0
    bool persists = false;   ///< no users or program output: lives past the makespan
    int lifetime_extra = 0;  ///< life = last_use - start + lifetime_extra
};

/// Per-cycle machine capacities the model schedules against.
struct MachineCaps {
    int vector_lanes = 0;
    int scalar_units = 0;
    int index_merge_units = 0;
    int max_vector_reads = 0;   ///< vector read ports per cycle
    int max_vector_writes = 0;  ///< vector write ports per cycle
    int reconfig_cycles = 0;    ///< cost of one configuration change
};

/// Optional modulo wrap (§4.3): schedule the kernel onto II residues.
struct ModuloWrap {
    int ii = 0;
    int max_stage = 0;  ///< filled by lower_ir (horizon / ii + 1)
    bool minimize_reconfigs = false;
    int reconfig_budget = 0;  ///< cap on cyclic configuration changes R
};

/// Knobs for lower_ir. Defaults produce the full paper model against the
/// architecture's whole memory and a critical-path horizon.
struct LowerOptions {
    /// Memory slots available; -1 = the architecture's full memory.
    int num_slots = -1;

    /// Schedule horizon (exclusive bound on completions); -1 = the
    /// critical-path length. Consumers that need slack (ASAP/ALAP) against
    /// the critical path — the heuristic priority orders — must lower with
    /// the default.
    int horizon = -1;

    bool memory_allocation = true;       ///< include eqs. 6-11
    bool three_phase_search = true;      ///< §3.5 phases vs. one first-fail phase
    bool enforce_port_limits = true;     ///< per-cycle vector read/write caps
    bool lifetime_includes_last_read = true;  ///< executable-lifetime extension

    /// Non-empty pins every node's start (slot-only solve).
    std::vector<int> fixed_starts;

    /// Wrap the problem onto II residues; max_stage is recomputed.
    std::optional<ModuloWrap> modulo;
};

/// The lowered scheduling problem. All vectors indexed by IR node id keep
/// the IR's id order, so any walk over `nodes`, `ops`, `vector_ops`,
/// `vdata`, or `inputs` visits nodes exactly as the historical per-consumer
/// lowerings did — consumers rely on that for deterministic, replayable
/// variable and decision orders.
struct KernelModel {
    std::string name;
    std::vector<ModelNode> nodes;  ///< indexed by node id
    std::vector<ModelEdge> edges;  ///< grouped by src id, then IR succ order
    std::vector<int> ops;          ///< op node ids, ascending
    std::vector<int> vector_ops;   ///< vector-core op ids, ascending
    std::vector<int> vdata;        ///< VectorData node ids, ascending
    std::vector<int> inputs;       ///< producer-less data node ids, ascending
    std::vector<std::string> config_keys;  ///< dense config id -> key

    arch::MemoryGeometry geometry;
    MachineCaps caps;

    int num_slots = 0;
    int horizon = 0;
    int critical_path = 0;
    std::vector<int> asap;  ///< per node id
    std::vector<int> alap;  ///< per node id, against `horizon`

    bool memory_allocation = true;
    bool three_phase_search = true;
    bool enforce_port_limits = true;
    bool lifetime_includes_last_read = true;
    std::vector<int> fixed_starts;

    /// Partial pinning for subproblem re-solves (LNS repair rounds). When
    /// non-empty: one entry per node; entries >= 0 pin that node's start,
    /// -1 leaves it free. Unlike fixed_starts (the all-or-nothing slot-only
    /// mode), a frozen value that conflicts with the model bounds marks the
    /// emission infeasible instead of throwing — the LNS layer treats that
    /// as a rejected round. Pinning happens through plain assignments, so
    /// the emitted variable set (count and indices) is identical to the
    /// unfrozen model's; lower_ir never fills this field.
    std::vector<int> frozen_starts;
    std::optional<ModuloWrap> modulo;

    int num_nodes() const { return static_cast<int>(nodes.size()); }
    const ModelNode& node(int id) const { return nodes[static_cast<std::size_t>(id)]; }
};

/// Lower one kernel iteration of `g` under `spec` into a KernelModel.
/// Pure data extraction — no CP store, no solver state. The graph should
/// already be normalized (ir::merge_pipeline_ops) like every scheduling
/// entry point expects.
KernelModel lower_ir(const arch::ArchSpec& spec, const ir::Graph& g,
                     const LowerOptions& options = {});

/// Copy of `m` with the horizon raised (or lowered) to `horizon`. ALAP
/// times are computed against the horizon as latest-start = horizon minus
/// the tail path, so every entry shifts by exactly the horizon delta —
/// the copy matches what lower_ir would have produced with this horizon,
/// without needing the spec/graph. The modulo max_stage is recomputed the
/// way lower_ir fills it. Requires horizon >= critical_path (ALAP would
/// drop below ASAP otherwise).
KernelModel with_horizon(const KernelModel& m, int horizon);

}  // namespace revec::model
