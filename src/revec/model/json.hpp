// Deterministic JSON serialization of a KernelModel — --dump-model
// debugging dumps, the golden-file tests in tests/model, and the wire
// format of the revecd service protocol — plus the inverse parser and the
// content hash the schedule cache keys on.
#pragma once

#include <cstdint>
#include <string>

#include "revec/model/kernel_model.hpp"
#include "revec/support/json.hpp"

namespace revec::model {

/// Serialize `m` as pretty-printed JSON. Field order is fixed and every
/// container is emitted in its stored (node-id) order, so equal models
/// produce byte-identical text.
std::string to_json(const KernelModel& m);

/// Write to_json(m) to `path`; throws revec::Error when the file cannot be
/// written.
void save_json(const KernelModel& m, const std::string& path);

/// Rebuild a KernelModel from the to_json shape. Field order in the input
/// is irrelevant (lookups are by name); unknown fields are ignored so the
/// format can grow. `is_vector_data` is not serialized — it is
/// reconstructed from `vdata` membership. Throws revec::Error on missing
/// or mistyped required fields. Round-trip contract:
/// to_json(from_json(to_json(m))) == to_json(m).
KernelModel from_json(const std::string& text);
KernelModel from_json(const json::Value& doc);

/// Stable 64-bit FNV-1a over the canonical to_json bytes. Two models hash
/// equal iff their canonical serializations are byte-identical, so the
/// hash is independent of the field order of any JSON a model was parsed
/// from — the content-address the revecd schedule cache keys on.
std::uint64_t canonical_hash(const KernelModel& m);

}  // namespace revec::model
