// Deterministic JSON serialization of a KernelModel, for --dump-model
// debugging dumps and the golden-file tests in tests/model.
#pragma once

#include <string>

#include "revec/model/kernel_model.hpp"

namespace revec::model {

/// Serialize `m` as pretty-printed JSON. Field order is fixed and every
/// container is emitted in its stored (node-id) order, so equal models
/// produce byte-identical text.
std::string to_json(const KernelModel& m);

/// Write to_json(m) to `path`; throws revec::Error when the file cannot be
/// written.
void save_json(const KernelModel& m, const std::string& path);

}  // namespace revec::model
