#include "revec/model/kernel_model.hpp"

#include <map>

#include "revec/ir/analysis.hpp"
#include "revec/support/assert.hpp"

namespace revec::model {

KernelModel lower_ir(const arch::ArchSpec& spec, const ir::Graph& g,
                     const LowerOptions& options) {
    KernelModel m;
    m.name = g.name();
    m.geometry = spec.memory;
    m.caps = MachineCaps{spec.vector_lanes,
                         spec.scalar_units,
                         spec.index_merge_units,
                         spec.max_vector_reads_per_cycle,
                         spec.max_vector_writes_per_cycle,
                         spec.reconfig_cycles};
    m.num_slots = options.num_slots < 0 ? spec.memory.slots() : options.num_slots;
    m.critical_path = ir::critical_path_length(spec, g);
    m.horizon = options.horizon < 0 ? m.critical_path : options.horizon;
    m.asap = ir::asap_times(spec, g);
    m.alap = ir::alap_times(spec, g, m.horizon);
    m.memory_allocation = options.memory_allocation;
    m.three_phase_search = options.three_phase_search;
    m.enforce_port_limits = options.enforce_port_limits;
    m.lifetime_includes_last_read = options.lifetime_includes_last_read;
    m.fixed_starts = options.fixed_starts;

    std::map<std::string, int> config_ids;
    m.nodes.resize(static_cast<std::size_t>(g.num_nodes()));
    for (const ir::Node& node : g.nodes()) {
        ModelNode& out = m.nodes[static_cast<std::size_t>(node.id)];
        out.id = node.id;
        out.is_op = node.is_op();
        out.is_vector_data = node.cat == ir::NodeCat::VectorData;
        out.cat = std::string(ir::cat_name(node.cat));
        out.op = node.op;
        const ir::NodeTiming t = ir::node_timing(spec, node);
        out.latency = t.latency;
        out.duration = t.duration;
        out.lanes = t.lanes;
        out.preds = g.preds(node.id);
        out.succs = g.succs(node.id);

        if (out.is_op) {
            if (t.lanes > 0) {
                out.unit = Unit::VectorCore;
                const std::string key = ir::config_key(node);
                const auto [it, inserted] =
                    config_ids.emplace(key, static_cast<int>(config_ids.size()));
                if (inserted) m.config_keys.push_back(key);
                out.config = it->second;
                m.vector_ops.push_back(node.id);
            } else if (node.cat == ir::NodeCat::ScalarOp) {
                out.unit = Unit::Scalar;
            } else {
                out.unit = Unit::IndexMerge;
            }
            m.ops.push_back(node.id);
            for (const int p : out.preds) {
                if (g.node(p).cat == ir::NodeCat::VectorData) out.vector_inputs.push_back(p);
            }
            for (const int s : out.succs) {
                if (g.node(s).cat == ir::NodeCat::VectorData) out.vector_outputs.push_back(s);
            }
        } else {
            out.is_input = out.preds.empty();
            if (out.is_input) m.inputs.push_back(node.id);
            if (out.is_vector_data) m.vdata.push_back(node.id);
            // Lifetime endpoints (eq. 10 with the executable extensions):
            // sinks and program outputs persist one cycle past the schedule
            // end; a preloaded input occupies its slot through the last read
            // even under the paper-literal lifetime definition.
            out.persists = out.succs.empty() || node.is_output;
            int extra = options.lifetime_includes_last_read ? 1 : 0;
            if (out.persists) {
                extra += 1;
            } else if (out.is_input && extra == 0) {
                extra = 1;
            }
            out.lifetime_extra = extra;
        }

        for (const int succ : out.succs) {
            m.edges.push_back(ModelEdge{node.id, succ, t.latency,
                                        g.node(succ).is_data() ? EdgeKind::DataProduce
                                                               : EdgeKind::Precedence});
        }
    }

    if (options.modulo.has_value()) {
        ModuloWrap wrap = *options.modulo;
        REVEC_EXPECTS(wrap.ii > 0);
        wrap.max_stage = m.horizon / wrap.ii + 1;
        m.modulo = wrap;
    }
    return m;
}

KernelModel with_horizon(const KernelModel& m, int horizon) {
    REVEC_EXPECTS(horizon >= m.critical_path);
    KernelModel out = m;
    const int delta = horizon - m.horizon;
    out.horizon = horizon;
    for (int& t : out.alap) t += delta;
    if (out.modulo.has_value()) {
        out.modulo->max_stage = out.horizon / out.modulo->ii + 1;
    }
    return out;
}

}  // namespace revec::model
