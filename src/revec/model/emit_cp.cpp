#include "revec/model/emit_cp.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "revec/cp/arith.hpp"
#include "revec/cp/count.hpp"
#include "revec/cp/cumulative.hpp"
#include "revec/cp/diff2.hpp"
#include "revec/cp/linear.hpp"
#include "revec/cp/reified.hpp"
#include "revec/support/assert.hpp"

namespace revec::model {

namespace {

using cp::IntVar;

/// Caches reified equality booleans so shared pairs post one propagator.
class EqBoolCache {
public:
    explicit EqBoolCache(cp::Store& store) : store_(store) {}

    cp::BoolVar get(IntVar x, IntVar y) {
        // std::minmax returns a pair of references into its argument
        // temporaries; copy into a value pair before they die.
        const std::pair<std::int32_t, std::int32_t> key =
            std::minmax(x.index(), y.index());
        const auto it = cache_.find(key);
        if (it != cache_.end()) return it->second;
        const cp::BoolVar b = store_.new_bool();
        cp::post_reified_eq(store_, b, x, y);
        cache_.emplace(key, b);
        return b;
    }

private:
    cp::Store& store_;
    std::map<std::pair<std::int32_t, std::int32_t>, cp::BoolVar> cache_;
};

/// The flat §3.3-§3.5 model: start times tightened by ASAP/ALAP, the
/// makespan objective over completions (eq. 5), precedence and data-start
/// edges (eqs. 1/4), unit capacities (eq. 2), one configuration per cycle
/// (eq. 3), the memory-port extension, and the memory allocation block
/// (eqs. 6-11) with the redundant live-data cumulative.
VarTable emit_flat(cp::Store& store, const KernelModel& m) {
    const int n = m.num_nodes();
    const int horizon = m.horizon;

    // -- start-time variables, tightened by ASAP/ALAP ------------------------
    std::vector<IntVar> start(static_cast<std::size_t>(n));
    for (const ModelNode& node : m.nodes) {
        const auto i = static_cast<std::size_t>(node.id);
        start[i] = store.new_var(m.asap[i], m.alap[i], "s" + std::to_string(node.id));
    }

    // Inputs are ready from the start (paper: "any data node without any
    // predecessors gets the start time zero").
    for (const int d : m.inputs) store.assign(start[static_cast<std::size_t>(d)], 0);

    // Slot-only mode: pin every start to the supplied schedule.
    if (!m.fixed_starts.empty()) {
        if (m.fixed_starts.size() != static_cast<std::size_t>(n)) {
            throw Error("fixed_starts must supply one start per node");
        }
        for (const ModelNode& node : m.nodes) {
            const auto i = static_cast<std::size_t>(node.id);
            if (!store.assign(start[i], m.fixed_starts[i])) {
                throw Error("fixed start " + std::to_string(m.fixed_starts[i]) +
                            " for node " + std::to_string(node.id) +
                            " conflicts with the model bounds");
            }
        }
    }

    // LNS repair mode: pin the frozen subset of starts to the incumbent.
    // Plain assignments only — the variable set stays identical to the
    // unfrozen emission, so a repair solve's assignment vector indexes any
    // other emission of the same base model.
    if (!m.frozen_starts.empty()) {
        if (m.frozen_starts.size() != static_cast<std::size_t>(n)) {
            throw Error("frozen_starts must supply one entry per node");
        }
        for (const ModelNode& node : m.nodes) {
            const auto i = static_cast<std::size_t>(node.id);
            const int v = m.frozen_starts[i];
            if (v < 0) continue;
            if (!store.assign(start[i], v)) {
                // An incumbent start outside the subproblem bounds (e.g. a
                // tightened horizon): report infeasible so the LNS round is
                // rejected, instead of throwing like fixed_starts does.
                VarTable out;
                out.start = std::move(start);
                out.infeasible = true;
                return out;
            }
        }
    }

    // -- objective: latest completion (eq. 5) ---------------------------------
    const IntVar obj = store.new_var(0, horizon, "makespan");
    std::vector<IntVar> completions;
    for (const ModelNode& node : m.nodes) {
        const auto i = static_cast<std::size_t>(node.id);
        if (node.latency == 0) {
            completions.push_back(start[i]);
        } else {
            const IntVar c = store.new_var(0, horizon, "c" + std::to_string(node.id));
            cp::post_eq_offset(store, start[i], node.latency, c);
            completions.push_back(c);
        }
    }
    cp::post_max(store, obj, completions);

    // -- precedence (eq. 1) and data-node starts (eq. 4) ----------------------
    for (const ModelEdge& e : m.edges) {
        const auto i = static_cast<std::size_t>(e.src);
        const auto j = static_cast<std::size_t>(e.dst);
        if (e.kind == EdgeKind::DataProduce) {
            // eq. (4): a produced data node starts exactly when its
            // producer's latency has elapsed (implies eq. 1).
            cp::post_eq_offset(store, start[i], e.latency, start[j]);
        } else {
            cp::post_leq_offset(store, start[i], e.latency, start[j]);
        }
    }

    // -- resource constraints (eq. 2 + the scalar and index/merge units) ------
    std::vector<cp::CumulTask> lane_tasks;
    std::vector<cp::CumulTask> scalar_tasks;
    std::vector<cp::CumulTask> ixmerge_tasks;
    for (const int op : m.ops) {
        const ModelNode& node = m.node(op);
        const auto i = static_cast<std::size_t>(op);
        if (node.lanes > 0) {
            lane_tasks.push_back({start[i], node.duration, node.lanes});
        } else if (node.unit == Unit::Scalar) {
            scalar_tasks.push_back({start[i], node.duration, 1});
        } else {
            ixmerge_tasks.push_back({start[i], node.duration, 1});
        }
    }
    if (!lane_tasks.empty()) cp::post_cumulative(store, lane_tasks, m.caps.vector_lanes);
    if (!scalar_tasks.empty()) cp::post_cumulative(store, scalar_tasks, m.caps.scalar_units);
    if (!ixmerge_tasks.empty()) {
        cp::post_cumulative(store, ixmerge_tasks, m.caps.index_merge_units);
    }

    // Physical memory-port limits (beyond the paper's model): vector-core
    // reads happen at issue time; vector writes land at the producer's
    // completion.
    if (m.enforce_port_limits) {
        std::vector<cp::CumulTask> read_tasks;
        std::vector<cp::CumulTask> write_tasks;
        for (const int op : m.ops) {
            const ModelNode& node = m.node(op);
            const auto i = static_cast<std::size_t>(op);
            if (node.lanes > 0) {
                const int reads = static_cast<int>(node.vector_inputs.size());
                if (reads > 0) read_tasks.push_back({start[i], 1, reads});
            }
            const int writes = static_cast<int>(node.vector_outputs.size());
            if (writes > 0) {
                // completions[i] exists for every op (latency > 0).
                write_tasks.push_back({completions[i], 1, writes});
            }
        }
        if (!read_tasks.empty()) {
            cp::post_cumulative(store, read_tasks, m.caps.max_vector_reads);
        }
        if (!write_tasks.empty()) {
            cp::post_cumulative(store, write_tasks, m.caps.max_vector_writes);
        }
    }

    // -- one configuration per cycle (eq. 3) -----------------------------------
    // Only single-lane (vector) op pairs need it: any pair involving a
    // matrix op is already excluded by the lane Cumulative.
    std::vector<int> single_lane_ops;
    for (const int op : m.vector_ops) {
        if (m.node(op).lanes < m.caps.vector_lanes) single_lane_ops.push_back(op);
    }
    for (std::size_t a = 0; a < single_lane_ops.size(); ++a) {
        for (std::size_t b = a + 1; b < single_lane_ops.size(); ++b) {
            const ModelNode& na = m.node(single_lane_ops[a]);
            const ModelNode& nb = m.node(single_lane_ops[b]);
            if (na.config != nb.config) {
                cp::post_not_equal(store, start[static_cast<std::size_t>(na.id)],
                                   start[static_cast<std::size_t>(nb.id)]);
            }
        }
    }

    // -- memory allocation (eqs. 6-11) ------------------------------------------
    std::vector<IntVar> slot_vars;  // parallel to m.vdata
    std::map<int, IntVar> slot_of;  // node id -> slot var
    std::map<int, IntVar> line_of;
    std::map<int, IntVar> page_of;

    if (m.memory_allocation) {
        const int num_slots = m.num_slots;
        REVEC_EXPECTS(num_slots > 0 || m.vdata.empty());  // checked by the callers
        const arch::MemoryGeometry geom = m.geometry;
        const int max_line = geom.line_of(num_slots - 1);
        const int max_page = geom.pages() - 1;

        std::vector<IntVar> lifetimes;
        std::vector<cp::Rect> rects;
        for (const int d : m.vdata) {
            const auto i = static_cast<std::size_t>(d);
            const IntVar slot = store.new_var(0, num_slots - 1, "slot" + std::to_string(d));
            const IntVar line = store.new_var(0, max_line, "line" + std::to_string(d));
            const IntVar page = store.new_var(0, max_page, "page" + std::to_string(d));
            // eq. (6): channel the three views of the placement.
            cp::post_unary_fun(store, slot, line,
                               [geom](int s) { return geom.line_of(s); },
                               "line=slot/banks");
            cp::post_unary_fun(store, slot, page,
                               [geom](int s) { return geom.page_of(s); },
                               "page=(slot mod banks)/pageSize");
            slot_vars.push_back(slot);
            slot_of.emplace(d, slot);
            line_of.emplace(d, line);
            page_of.emplace(d, page);

            // eq. (10): lifetime = max(successor starts) - own start. Sinks
            // and program outputs stay live until one cycle past the
            // makespan — an output produced exactly at the makespan must
            // still be in memory when the program ends.
            const ModelNode& dn = m.node(d);
            std::vector<IntVar> users;
            for (const int succ : dn.succs) {
                users.push_back(start[static_cast<std::size_t>(succ)]);
            }
            if (dn.persists) users.push_back(obj);
            const IntVar last_use = store.new_var(0, horizon + 1, "use" + std::to_string(d));
            cp::post_max(store, last_use, users);
            const IntVar life = store.new_var(0, horizon + 1, "life" + std::to_string(d));
            // life = last_use - start + lifetime_extra
            cp::post_linear_eq(store, {{1, life}, {-1, last_use}, {1, start[i]}},
                               dn.lifetime_extra);
            lifetimes.push_back(life);

            // eq. (11) rectangle: (time, slot) origin with lifetime width.
            rects.push_back(cp::Rect{start[i], slot, life, 1});
        }
        if (!rects.empty()) cp::post_diff2(store, rects);

        // Redundant but powerful: at no point can more vector data be live
        // than there are slots. Time-table reasoning over the (variable)
        // lifetimes detects memory-capacity infeasibility long before the
        // slot phase, which Diff2's pairwise reasoning cannot.
        {
            std::vector<cp::CumulTask> live_tasks;
            for (std::size_t k = 0; k < m.vdata.size(); ++k) {
                const auto i = static_cast<std::size_t>(m.vdata[k]);
                live_tasks.push_back(cp::CumulTask{start[i], 0, 1, lifetimes[k]});
            }
            cp::post_cumulative(store, live_tasks, num_slots);
        }

        EqBoolCache eq_start(store);
        EqBoolCache eq_page(store);
        EqBoolCache eq_line(store);

        // eq. (7): inputs of one vector-core operation are accessed together.
        for (const int op : m.vector_ops) {
            const std::vector<int>& ins = m.node(op).vector_inputs;
            for (std::size_t a = 0; a < ins.size(); ++a) {
                for (std::size_t b = a + 1; b < ins.size(); ++b) {
                    const cp::BoolVar bp = eq_page.get(page_of.at(ins[a]), page_of.at(ins[b]));
                    const cp::BoolVar bl = eq_line.get(line_of.at(ins[a]), line_of.at(ins[b]));
                    cp::post_implies(store, bp, bl);
                }
            }
        }

        // eq. (8): simultaneously issued vector-core operations read their
        // inputs together.
        for (std::size_t a = 0; a < m.vector_ops.size(); ++a) {
            for (std::size_t b = a + 1; b < m.vector_ops.size(); ++b) {
                const ModelNode& oi = m.node(m.vector_ops[a]);
                const ModelNode& oj = m.node(m.vector_ops[b]);
                // Two matrix ops (or a matrix and anything else) can never
                // share a cycle; skip the clauses entirely.
                if (oi.lanes + oj.lanes > m.caps.vector_lanes) continue;
                const cp::BoolVar bs = eq_start.get(start[static_cast<std::size_t>(oi.id)],
                                                    start[static_cast<std::size_t>(oj.id)]);
                for (const int d : oi.vector_inputs) {
                    for (const int e : oj.vector_inputs) {
                        if (d == e) continue;
                        const cp::BoolVar bp = eq_page.get(page_of.at(d), page_of.at(e));
                        const cp::BoolVar bl = eq_line.get(line_of.at(d), line_of.at(e));
                        cp::post_clause(store, {cp::neg(bs), cp::neg(bp), cp::pos(bl)});
                    }
                }
            }
        }

        // eq. (9), generalized: vector writes that *land* in the same cycle
        // share the page descriptors. The paper groups by issue time over
        // vector-core ops only, which leaves a hole our simulator caught:
        // a merge-unit write (1-cycle latency) can land together with a
        // vector-core write (7-cycle latency) from an earlier issue. We
        // group by completion time across every vector-writing unit.
        std::vector<int> writers;
        for (const int op : m.ops) {
            if (!m.node(op).vector_outputs.empty()) writers.push_back(op);
        }
        EqBoolCache eq_completion(store);
        for (std::size_t a = 0; a < writers.size(); ++a) {
            for (std::size_t b = a + 1; b < writers.size(); ++b) {
                const cp::BoolVar bc =
                    eq_completion.get(completions[static_cast<std::size_t>(writers[a])],
                                      completions[static_cast<std::size_t>(writers[b])]);
                for (const int d : m.node(writers[a]).vector_outputs) {
                    for (const int e : m.node(writers[b]).vector_outputs) {
                        const cp::BoolVar bp = eq_page.get(page_of.at(d), page_of.at(e));
                        const cp::BoolVar bl = eq_line.get(line_of.at(d), line_of.at(e));
                        cp::post_clause(store, {cp::neg(bc), cp::neg(bp), cp::pos(bl)});
                    }
                }
            }
        }
    }

    // -- search phases (§3.5) ----------------------------------------------------
    std::vector<IntVar> op_starts;
    std::vector<IntVar> data_starts;
    for (const ModelNode& node : m.nodes) {
        (node.is_op ? op_starts : data_starts)
            .push_back(start[static_cast<std::size_t>(node.id)]);
    }

    std::vector<cp::Phase> phases;
    if (m.three_phase_search) {
        phases.push_back({op_starts, cp::VarSelect::SmallestMin, cp::ValSelect::Min, "ops"});
        phases.push_back({data_starts, cp::VarSelect::SmallestMin, cp::ValSelect::Min, "data"});
        phases.push_back({slot_vars, cp::VarSelect::InputOrder, cp::ValSelect::Min, "slots"});
    } else {
        std::vector<IntVar> all = op_starts;
        all.insert(all.end(), data_starts.begin(), data_starts.end());
        all.insert(all.end(), slot_vars.begin(), slot_vars.end());
        phases.push_back({all, cp::VarSelect::MinDomain, cp::ValSelect::Min, "all"});
    }

    VarTable out;
    out.start = std::move(start);
    out.slot_of = std::move(slot_of);
    out.makespan = obj;
    out.phases = std::move(phases);
    return out;
}

/// The §4.3 modulo model: per-op start / residue / stage triples channeled
/// by s = II*k + m, kernel resource cumulatives over the residues, the
/// modulo form of eq. 3, and optionally the cyclic reconfiguration count R
/// with its per-residue configuration variables.
VarTable emit_modulo(cp::Store& store, const KernelModel& m) {
    const ModuloWrap& wrap = *m.modulo;
    const int ii = wrap.ii;
    const int horizon = m.horizon;
    const int n = m.num_nodes();

    std::vector<IntVar> start(static_cast<std::size_t>(n));
    std::vector<IntVar> residue(static_cast<std::size_t>(n));
    std::vector<IntVar> stage(static_cast<std::size_t>(n));
    const int max_stage = wrap.max_stage;

    for (const ModelNode& node : m.nodes) {
        const auto i = static_cast<std::size_t>(node.id);
        start[i] = store.new_var(m.asap[i], horizon, "s" + std::to_string(node.id));
        if (!node.is_op) continue;
        residue[i] = store.new_var(0, ii - 1, "m" + std::to_string(node.id));
        stage[i] = store.new_var(0, max_stage, "k" + std::to_string(node.id));
        // s = II * k + m
        cp::post_linear_eq(store, {{1, start[i]}, {-ii, stage[i]}, {-1, residue[i]}}, 0);
    }

    // Inputs at 0; data nodes follow eq. 4; precedence otherwise.
    for (const int d : m.inputs) store.assign(start[static_cast<std::size_t>(d)], 0);
    for (const ModelEdge& e : m.edges) {
        const auto i = static_cast<std::size_t>(e.src);
        const auto j = static_cast<std::size_t>(e.dst);
        if (e.kind == EdgeKind::DataProduce) {
            cp::post_eq_offset(store, start[i], e.latency, start[j]);
        } else {
            cp::post_leq_offset(store, start[i], e.latency, start[j]);
        }
    }

    // Kernel resource constraints on the residues.
    std::vector<cp::CumulTask> lane_tasks;
    std::vector<cp::CumulTask> scalar_tasks;
    std::vector<cp::CumulTask> ix_tasks;
    for (const int op : m.ops) {
        const ModelNode& node = m.node(op);
        const auto i = static_cast<std::size_t>(op);
        if (node.lanes > 0) {
            lane_tasks.push_back({residue[i], node.duration, node.lanes});
        } else if (node.unit == Unit::Scalar) {
            scalar_tasks.push_back({residue[i], node.duration, 1});
        } else {
            ix_tasks.push_back({residue[i], node.duration, 1});
        }
    }
    if (!lane_tasks.empty()) cp::post_cumulative(store, lane_tasks, m.caps.vector_lanes);
    if (!scalar_tasks.empty()) cp::post_cumulative(store, scalar_tasks, m.caps.scalar_units);
    if (!ix_tasks.empty()) cp::post_cumulative(store, ix_tasks, m.caps.index_merge_units);

    // One configuration per residue (eq. 3 in modulo form).
    for (std::size_t a = 0; a < m.vector_ops.size(); ++a) {
        for (std::size_t b = a + 1; b < m.vector_ops.size(); ++b) {
            if (m.node(m.vector_ops[a]).config == m.node(m.vector_ops[b]).config) continue;
            cp::post_not_equal(store, residue[static_cast<std::size_t>(m.vector_ops[a])],
                               residue[static_cast<std::size_t>(m.vector_ops[b])]);
        }
    }

    IntVar reconfig_count;
    std::vector<IntVar> type_vars;
    if (wrap.minimize_reconfigs && !m.vector_ops.empty()) {
        const int num_configs = static_cast<int>(m.config_keys.size());
        // Per-residue configuration variable. Unoccupied residues take any
        // value; letting them interpolate matches the semantics that nop
        // cycles keep the previous configuration loaded.
        for (int t = 0; t < ii; ++t) {
            type_vars.push_back(store.new_var(0, num_configs - 1, "cfg" + std::to_string(t)));
        }
        // Channel: op i at residue t forces type_vars[t] = config(i).
        for (const int op : m.vector_ops) {
            const auto i = static_cast<std::size_t>(op);
            for (int t = 0; t < ii; ++t) {
                const cp::BoolVar here = store.new_bool();
                cp::post_reified_eq_const(store, here, residue[i], t);
                const cp::BoolVar is_cfg = store.new_bool();
                cp::post_reified_eq_const(store, is_cfg, type_vars[static_cast<std::size_t>(t)],
                                          m.node(op).config);
                cp::post_implies(store, here, is_cfg);
            }
        }
        // R = number of cyclic adjacent changes.
        std::vector<cp::BoolVar> same;
        for (int t = 0; t < ii; ++t) {
            const cp::BoolVar b = store.new_bool();
            cp::post_reified_eq(store, b, type_vars[static_cast<std::size_t>(t)],
                                type_vars[static_cast<std::size_t>((t + 1) % ii)]);
            same.push_back(b);
        }
        const IntVar same_count = store.new_var(0, ii, "same_count");
        cp::post_bool_sum(store, same, same_count);
        // Redundant lower bound: every configuration forms at least one
        // maximal block around the kernel, so with >= 2 configurations the
        // cyclic change count is at least the number of configurations.
        const int r_lower = num_configs >= 2 ? num_configs : 0;
        const int r_upper = std::min(ii, wrap.reconfig_budget);
        if (r_upper < r_lower) {
            VarTable out;
            out.start = std::move(start);
            out.residue = std::move(residue);
            out.stage = std::move(stage);
            out.infeasible = true;
            return out;
        }
        reconfig_count = store.new_var(r_lower, r_upper, "reconfigs");
        cp::post_linear_eq(store, {{1, reconfig_count}, {1, same_count}}, ii);
    }

    // Phases: residues first (they define the kernel), then stages, then
    // configuration variables. When minimizing reconfigurations, branch the
    // residues grouped by configuration in input order: with min-value
    // selection, same-configuration operations pack into adjacent residues,
    // so the first incumbents already have few configuration changes.
    std::vector<int> op_order = m.ops;
    if (wrap.minimize_reconfigs) {
        // Vector-core groups first (they drive R), scalar / index-merge ops
        // last (any residue works for them via the stage variable).
        std::stable_sort(op_order.begin(), op_order.end(), [&](int a, int b) {
            const auto key = [&](int id) {
                const ModelNode& node = m.node(id);
                return node.lanes > 0 ? m.config_keys[static_cast<std::size_t>(node.config)]
                                      : std::string("~");
            };
            return key(a) < key(b);
        });
    }
    std::vector<IntVar> residue_list;
    std::vector<IntVar> stage_list;
    for (const int id : op_order) {
        residue_list.push_back(residue[static_cast<std::size_t>(id)]);
        stage_list.push_back(stage[static_cast<std::size_t>(id)]);
    }
    std::vector<cp::Phase> phases;
    phases.push_back({residue_list,
                      wrap.minimize_reconfigs ? cp::VarSelect::InputOrder
                                              : cp::VarSelect::SmallestMin,
                      cp::ValSelect::Min, "residues"});
    phases.push_back({stage_list, cp::VarSelect::SmallestMin, cp::ValSelect::Min, "stages"});
    if (!type_vars.empty()) {
        phases.push_back({type_vars, cp::VarSelect::InputOrder, cp::ValSelect::Min, "configs"});
    }

    VarTable out;
    out.start = std::move(start);
    out.residue = std::move(residue);
    out.stage = std::move(stage);
    out.reconfig_count = reconfig_count;
    out.phases = std::move(phases);
    return out;
}

}  // namespace

VarTable emit_cp(cp::Store& store, const KernelModel& m) {
    return m.modulo.has_value() ? emit_modulo(store, m) : emit_flat(store, m);
}

}  // namespace revec::model
