// The model's own schedule checker: re-checks a concrete schedule against
// every constraint of the KernelModel (eqs. 1-11 plus the port-limit
// extension) without going through the CP solver. Because checker and
// emitter read the same lowered model, the formulation and its verifier
// cannot drift apart. sched::verify_schedule is a thin wrapper over this.
#pragma once

#include <string>
#include <vector>

#include "revec/model/kernel_model.hpp"

namespace revec::model {

/// Check the schedule (`start` and `slot` per node id, plus the recorded
/// makespan) against `m`. Which constraint families are checked follows the
/// model: memory (eqs. 6-11) iff m.memory_allocation, port limits iff
/// m.enforce_port_limits. Returns every violation found (empty = valid).
std::vector<std::string> check_schedule(const KernelModel& m, const std::vector<int>& start,
                                        const std::vector<int>& slot, int recorded_makespan);

}  // namespace revec::model
