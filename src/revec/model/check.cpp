#include "revec/model/check.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace revec::model {

namespace {

std::string at_node(const KernelModel& m, int id) {
    std::ostringstream os;
    const ModelNode& n = m.node(id);
    os << "node " << id << " (" << n.cat;
    if (!n.op.empty()) os << " " << n.op;
    os << ")";
    return os.str();
}

}  // namespace

std::vector<std::string> check_schedule(const KernelModel& m, const std::vector<int>& start,
                                        const std::vector<int>& slot, int recorded_makespan) {
    std::vector<std::string> problems;
    const auto report = [&](const std::string& msg) { problems.push_back(msg); };

    if (start.size() != static_cast<std::size_t>(m.num_nodes())) {
        report("schedule start vector has wrong size");
        return problems;
    }
    const auto s = [&](int id) { return start[static_cast<std::size_t>(id)]; };

    // -- eq. (1) precedence / eq. (4) data starts ------------------------------
    for (const ModelEdge& e : m.edges) {
        if (e.kind == EdgeKind::DataProduce) {
            if (s(e.dst) != s(e.src) + e.latency) {
                report(at_node(m, e.dst) + " starts at " + std::to_string(s(e.dst)) +
                       ", expected producer start + latency = " +
                       std::to_string(s(e.src) + e.latency));
            }
        } else if (s(e.src) + e.latency > s(e.dst)) {
            report("precedence violated: " + at_node(m, e.src) + " -> " + at_node(m, e.dst));
        }
    }
    for (const int d : m.inputs) {
        if (s(d) != 0) report(at_node(m, d) + ": input data must start at 0");
    }

    // -- eq. (2) lane capacity, eq. (3) one configuration per cycle, and the
    //    scalar / index-merge units ------------------------------------------------
    std::map<int, int> lanes_at;
    std::map<int, int> config_at;
    std::map<int, int> scalar_at;
    std::map<int, int> ixmerge_at;
    for (const int op : m.ops) {
        const ModelNode& node = m.node(op);
        for (int dt = 0; dt < node.duration; ++dt) {
            const int at = s(op) + dt;
            if (node.lanes > 0) {
                lanes_at[at] += node.lanes;
                auto [it, inserted] = config_at.emplace(at, node.config);
                if (!inserted && it->second != node.config) {
                    report("two configurations at cycle " + std::to_string(at) + ": " +
                           m.config_keys[static_cast<std::size_t>(it->second)] + " vs " +
                           m.config_keys[static_cast<std::size_t>(node.config)]);
                }
            } else if (node.unit == Unit::Scalar) {
                ++scalar_at[at];
            } else {
                ++ixmerge_at[at];
            }
        }
    }
    for (const auto& [at, lanes] : lanes_at) {
        if (lanes > m.caps.vector_lanes) {
            report("lane overload at cycle " + std::to_string(at) + ": " +
                   std::to_string(lanes) + " > " + std::to_string(m.caps.vector_lanes));
        }
    }
    for (const auto& [at, cnt] : scalar_at) {
        if (cnt > m.caps.scalar_units) {
            report("scalar unit overload at cycle " + std::to_string(at));
        }
    }
    for (const auto& [at, cnt] : ixmerge_at) {
        if (cnt > m.caps.index_merge_units) {
            report("index/merge unit overload at cycle " + std::to_string(at));
        }
    }

    // -- makespan (eq. 5) -------------------------------------------------------------
    int makespan = 0;
    for (const ModelNode& node : m.nodes) {
        makespan = std::max(makespan, s(node.id) + node.latency);
    }
    if (makespan != recorded_makespan) {
        report("recorded makespan " + std::to_string(recorded_makespan) + " != computed " +
               std::to_string(makespan));
    }

    // -- memory-port limits (model extension; slot-independent) ----------------
    if (m.enforce_port_limits) {
        std::map<int, int> reads_count;
        std::map<int, int> writes_count;
        for (const int op : m.ops) {
            const ModelNode& node = m.node(op);
            if (node.lanes > 0) {
                reads_count[s(op)] += static_cast<int>(node.vector_inputs.size());
            }
            if (!node.vector_outputs.empty()) {
                writes_count[s(op) + node.latency] +=
                    static_cast<int>(node.vector_outputs.size());
            }
        }
        for (const auto& [at, cnt] : reads_count) {
            if (cnt > m.caps.max_vector_reads) {
                report("read-port overload at cycle " + std::to_string(at) + ": " +
                       std::to_string(cnt) + " > " + std::to_string(m.caps.max_vector_reads));
            }
        }
        for (const auto& [at, cnt] : writes_count) {
            if (cnt > m.caps.max_vector_writes) {
                report("write-port overload at cycle " + std::to_string(at) + ": " +
                       std::to_string(cnt) + " > " + std::to_string(m.caps.max_vector_writes));
            }
        }
    }

    if (!m.memory_allocation) return problems;

    // -- memory allocation (eqs. 6-11) ---------------------------------------------------
    if (slot.size() != static_cast<std::size_t>(m.num_nodes())) {
        report("schedule slot vector has wrong size");
        return problems;
    }
    const arch::MemoryGeometry& geom = m.geometry;
    const auto slot_of = [&](int id) { return slot[static_cast<std::size_t>(id)]; };

    for (const int d : m.vdata) {
        if (slot_of(d) < 0 || slot_of(d) >= geom.slots()) {
            report(at_node(m, d) + ": slot " + std::to_string(slot_of(d)) + " out of range");
        }
    }
    if (!problems.empty()) return problems;

    // Lifetimes (eq. 10) and slot reuse (eq. 11).
    const auto life_of = [&](int d) {
        const ModelNode& node = m.node(d);
        int last = s(d);
        for (const int succ : node.succs) last = std::max(last, s(succ));
        // Sinks and outputs persist one cycle past the schedule end; the
        // extra cycles are precomputed in lifetime_extra.
        if (node.persists) last = std::max(last, makespan);
        return last - s(d) + node.lifetime_extra;
    };
    for (std::size_t a = 0; a < m.vdata.size(); ++a) {
        for (std::size_t b = a + 1; b < m.vdata.size(); ++b) {
            const int d = m.vdata[a];
            const int e = m.vdata[b];
            if (slot_of(d) != slot_of(e)) continue;
            // Zero-length lifetimes occupy nothing (Diff2 semantics: an
            // empty rectangle overlaps no other).
            if (life_of(d) == 0 || life_of(e) == 0) continue;
            const int d_end = s(d) + life_of(d);
            const int e_end = s(e) + life_of(e);
            const bool overlap = s(d) < e_end && s(e) < d_end;
            if (overlap) {
                report("slot " + std::to_string(slot_of(d)) + " reused while live: " +
                       at_node(m, d) + " [" + std::to_string(s(d)) + "," +
                       std::to_string(d_end) + ") vs " + at_node(m, e) + " [" +
                       std::to_string(s(e)) + "," + std::to_string(e_end) + ")");
            }
        }
    }

    // Simultaneous-access rules (eqs. 7-9): group the vector-data inputs of
    // all vector-core ops issued in a cycle (reads) and the vector data
    // produced in a cycle (writes); within each group, no two slots may be
    // in access conflict (same page, different line).
    std::map<int, std::vector<int>> reads_at;   // cycle -> slots
    std::map<int, std::vector<int>> writes_at;  // cycle -> slots
    for (const ModelNode& node : m.nodes) {
        if (node.is_op && node.lanes > 0) {
            for (const int p : node.vector_inputs) {
                reads_at[s(node.id)].push_back(slot_of(p));
            }
        }
        // Every produced vector datum is a memory write landing at the
        // data's start (its producer's completion), regardless of unit —
        // vector core or merge (see the generalized eq. 9 in the emitter).
        if (node.is_vector_data && !node.preds.empty()) {
            writes_at[s(node.id)].push_back(slot_of(node.id));
        }
    }
    const auto check_group = [&](int at, const std::vector<int>& slots, const char* what) {
        std::map<int, int> first_in_page;  // page -> first slot accessed
        for (const int sl : slots) {
            const auto [it, inserted] = first_in_page.emplace(geom.page_of(sl), sl);
            if (!inserted && geom.access_conflict(it->second, sl)) {
                report(std::string(what) + " at cycle " + std::to_string(at) + " hit page " +
                       std::to_string(geom.page_of(sl)) + " on lines " +
                       std::to_string(geom.line_of(it->second)) + " and " +
                       std::to_string(geom.line_of(sl)));
                return;
            }
        }
    };
    for (const auto& [at, slots] : reads_at) check_group(at, slots, "reads");
    for (const auto& [at, slots] : writes_at) check_group(at, slots, "writes");

    return problems;
}

}  // namespace revec::model
