// Large-neighbourhood search over an incumbent schedule (DESIGN §5h): each
// round relaxes a neighbourhood of t_starts (neighbourhood.hpp), freezes
// the rest at their incumbent values (KernelModel::frozen_starts), and
// re-solves the subproblem through the single CP emitter under a strict
// improvement bound and a tight failure budget. A round is accepted only
// when the repair solve's schedule passes model::check_schedule against
// the *base* model and strictly lowers the makespan, so the incumbent
// sequence is monotone and verify-clean by construction — the property
// the tests/lns suites pin down.
//
// Two entry points: improve_schedule() is the standalone, fully
// deterministic round loop (fixed seed + failure budgets, no wall-clock
// dependence unless a deadline is set) used by tests and benches;
// make_portfolio_round() packages one round as the cp::LnsRoundFn hook the
// portfolio's LNS workers drive (cp/portfolio.hpp stays model-agnostic).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "revec/cp/portfolio.hpp"
#include "revec/lns/neighbourhood.hpp"
#include "revec/model/kernel_model.hpp"
#include "revec/support/stopwatch.hpp"

namespace revec::obs {
class MetricsRegistry;
class TraceBuffer;
}  // namespace revec::obs

namespace revec::lns {

/// Shape of the moves: how much to relax and how hard to repair. Shared by
/// the standalone loop and the portfolio hook.
struct LnsTuning {
    /// Fraction of the op nodes each round un-freezes (before the
    /// DataProduce closure). Small slices repair fast but move little;
    /// large slices approach a full re-solve.
    double relax_pct = 0.3;

    /// Failure budget of one repair solve. Keeps every round cheap and —
    /// unlike a wall-clock budget — deterministic.
    std::int64_t repair_failures = 2000;

    /// Selector rotation; round r uses selectors[r % size]. Must not be
    /// empty.
    std::vector<Selector> selectors = {Selector::RandomSlice,
                                       Selector::CriticalPathWindow,
                                       Selector::ResourceHotRow};
};

/// Control of one standalone improve_schedule run.
struct LnsOptions {
    LnsTuning tuning;
    std::uint32_t seed = 0x1a15u;
    int max_rounds = 64;  ///< -1 = until the deadline / stop flag
    Deadline deadline;    ///< default: never expires
    const std::atomic<bool>* stop = nullptr;
    obs::TraceBuffer* trace = nullptr;
};

/// Outcome of a standalone run. start/slot/makespan always hold the final
/// incumbent (the input schedule when nothing improved).
struct LnsResult {
    bool improved = false;
    std::vector<int> start;
    std::vector<int> slot;
    int makespan = 0;
    int slots_used = 0;
    int rounds = 0;
    int accepted = 0;
    int rejected = 0;
    /// Makespan after each accepted round — strictly decreasing.
    std::vector<int> incumbent_trail;
    cp::SearchStats stats;  ///< summed repair-search work

    /// Export round/accept/reject counters and the final makespan under
    /// `prefix` (default "lns.") with deterministic key order.
    void export_metrics(obs::MetricsRegistry& m, const std::string& prefix = "lns.") const;
};

/// Run LNS rounds over the verified incumbent (start, slot, makespan) of
/// the flat model `m` (no modulo wrap, no fixed/frozen starts; the model's
/// horizon must cover the incumbent). Deterministic in options.seed when no
/// deadline/stop cuts the loop short.
LnsResult improve_schedule(const model::KernelModel& m, const std::vector<int>& start,
                           const std::vector<int>& slot, int makespan,
                           const LnsOptions& options = {});

/// Package one LNS round over `m` (copied into the closure) as the
/// portfolio hook: decodes the incumbent assignment through the model's
/// deterministic emission handles, runs one relax/repair round seeded from
/// the context, and returns the improving assignment when the repair is
/// verifier-clean. Safe to invoke concurrently.
cp::LnsRoundFn make_portfolio_round(const model::KernelModel& m, const LnsTuning& tuning);

/// Complete a verified schedule into a full store assignment of the
/// model's emission (start + slot decisions assigned, the rest fixed by
/// propagation) — the SolverConfig::lns_seed_assignment warm start. Empty
/// on any inconsistency (defensive; a check_schedule-clean input cannot
/// fail).
std::vector<int> complete_assignment(const model::KernelModel& m,
                                     const std::vector<int>& start,
                                     const std::vector<int>& slot);

}  // namespace revec::lns
