#include "revec/lns/neighbourhood.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "revec/support/assert.hpp"

namespace revec::lns {

namespace {

using model::KernelModel;
using model::ModelNode;
using model::Unit;

/// Number of ops one round relaxes before the DataProduce closure.
int relax_count(const KernelModel& m, double relax_pct) {
    const int ops = static_cast<int>(m.ops.size());
    const int k = static_cast<int>(
        std::ceil(relax_pct * static_cast<double>(ops)));
    return std::clamp(k, 1, std::max(ops, 1));
}

/// The k ops whose incumbent issue time is nearest `anchor`, ties broken
/// toward earlier starts then lower ids — a deterministic "time window"
/// that adapts its width to the local op density.
std::vector<int> nearest_ops(const KernelModel& m, const std::vector<int>& start,
                             int anchor, int k) {
    std::vector<int> order = m.ops;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        const int da = std::abs(start[static_cast<std::size_t>(a)] - anchor);
        const int db = std::abs(start[static_cast<std::size_t>(b)] - anchor);
        if (da != db) return da < db;
        if (start[static_cast<std::size_t>(a)] != start[static_cast<std::size_t>(b)]) {
            return start[static_cast<std::size_t>(a)] < start[static_cast<std::size_t>(b)];
        }
        return a < b;
    });
    order.resize(static_cast<std::size_t>(std::min<int>(k, static_cast<int>(order.size()))));
    return order;
}

std::vector<int> random_slice(const KernelModel& m, int k, XorShift& rng) {
    // Partial Fisher-Yates: the first k entries after k swap steps are a
    // uniform sample without replacement.
    std::vector<int> pool = m.ops;
    const int n = static_cast<int>(pool.size());
    for (int i = 0; i < k; ++i) {
        const int j = i + rng.below(n - i);
        std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
    }
    pool.resize(static_cast<std::size_t>(k));
    return pool;
}

std::vector<int> critical_window(const KernelModel& m, const std::vector<int>& start,
                                 int k, XorShift& rng) {
    // Critical sinks: nodes whose completion realizes the incumbent
    // makespan. Shrinking the makespan requires moving at least one of
    // them, so the window anchors on a random sink's issue time.
    int makespan = 0;
    for (const ModelNode& node : m.nodes) {
        const auto i = static_cast<std::size_t>(node.id);
        makespan = std::max(makespan, start[i] + node.latency);
    }
    std::vector<int> sinks;
    for (const int op : m.ops) {
        const ModelNode& node = m.node(op);
        if (start[static_cast<std::size_t>(op)] + node.latency == makespan) {
            sinks.push_back(op);
        }
    }
    // Data nodes can realize the makespan too (persisting outputs); ops
    // feeding them are one latency earlier — anchor on the latest op then.
    int anchor;
    if (!sinks.empty()) {
        anchor = start[static_cast<std::size_t>(
            sinks[static_cast<std::size_t>(rng.below(static_cast<int>(sinks.size())))])];
    } else {
        anchor = 0;
        for (const int op : m.ops) {
            anchor = std::max(anchor, start[static_cast<std::size_t>(op)]);
        }
    }
    return nearest_ops(m, start, anchor, k);
}

std::vector<int> resource_hot_row(const KernelModel& m, const std::vector<int>& start,
                                  int k, XorShift& rng) {
    // Per-cycle usage of each unit class under the incumbent; the hot row
    // is the (class, cycle) with the highest utilization ratio. Relaxing
    // the ops crowding it gives the repair solve room to de-serialize the
    // bottleneck resource.
    int horizon = 1;
    for (const int op : m.ops) {
        const ModelNode& node = m.node(op);
        horizon = std::max(horizon, start[static_cast<std::size_t>(op)] + node.duration);
    }
    struct Row {
        std::vector<int> use;
        int cap = 1;
    };
    Row rows[3];  // VectorCore lanes, Scalar, IndexMerge
    rows[0].cap = std::max(m.caps.vector_lanes, 1);
    rows[1].cap = std::max(m.caps.scalar_units, 1);
    rows[2].cap = std::max(m.caps.index_merge_units, 1);
    for (Row& r : rows) r.use.assign(static_cast<std::size_t>(horizon), 0);
    for (const int op : m.ops) {
        const ModelNode& node = m.node(op);
        const int demand = node.lanes > 0 ? node.lanes : 1;
        const int row = node.lanes > 0 ? 0 : (node.unit == Unit::Scalar ? 1 : 2);
        const int s = start[static_cast<std::size_t>(op)];
        for (int t = s; t < s + node.duration && t < horizon; ++t) {
            rows[row].use[static_cast<std::size_t>(t)] += demand;
        }
    }
    int best_row = 0;
    double best_ratio = -1.0;
    for (int r = 0; r < 3; ++r) {
        for (const int u : rows[r].use) {
            const double ratio = static_cast<double>(u) / rows[r].cap;
            if (ratio > best_ratio) {
                best_ratio = ratio;
                best_row = r;
            }
        }
    }
    // All cycles achieving the hot row's peak; the RNG picks among them so
    // successive rounds probe different congestion points.
    std::vector<int> peaks;
    for (int t = 0; t < horizon; ++t) {
        const double ratio =
            static_cast<double>(rows[best_row].use[static_cast<std::size_t>(t)]) /
            rows[best_row].cap;
        if (ratio == best_ratio) peaks.push_back(t);
    }
    const int anchor =
        peaks.empty() ? 0
                      : peaks[static_cast<std::size_t>(
                            rng.below(static_cast<int>(peaks.size())))];
    return nearest_ops(m, start, anchor, k);
}

}  // namespace

const char* selector_name(Selector s) {
    switch (s) {
        case Selector::RandomSlice: return "random-slice";
        case Selector::CriticalPathWindow: return "critical-path-window";
        case Selector::ResourceHotRow: return "resource-hot-row";
    }
    return "unknown";
}

std::vector<int> select_neighbourhood(const model::KernelModel& m,
                                      const std::vector<int>& start, Selector selector,
                                      double relax_pct, XorShift& rng) {
    REVEC_EXPECTS(start.size() == static_cast<std::size_t>(m.num_nodes()));
    REVEC_EXPECTS(!m.ops.empty());
    const int k = relax_count(m, relax_pct);

    std::vector<int> ops;
    switch (selector) {
        case Selector::RandomSlice: ops = random_slice(m, k, rng); break;
        case Selector::CriticalPathWindow: ops = critical_window(m, start, k, rng); break;
        case Selector::ResourceHotRow: ops = resource_hot_row(m, start, k, rng); break;
    }

    // Closure under DataProduce successors: eq. 4 pins a produced data
    // node's start to producer start + latency, so a relaxed producer must
    // carry its outputs along. Data nodes never produce further, so one
    // pass over the edges suffices.
    std::vector<char> in_set(static_cast<std::size_t>(m.num_nodes()), 0);
    for (const int op : ops) in_set[static_cast<std::size_t>(op)] = 1;
    for (const model::ModelEdge& e : m.edges) {
        if (e.kind == model::EdgeKind::DataProduce &&
            in_set[static_cast<std::size_t>(e.src)] != 0) {
            in_set[static_cast<std::size_t>(e.dst)] = 1;
        }
    }
    std::vector<int> out;
    for (int id = 0; id < m.num_nodes(); ++id) {
        if (in_set[static_cast<std::size_t>(id)] != 0 && !m.node(id).is_input) {
            out.push_back(id);
        }
    }
    return out;
}

}  // namespace revec::lns
