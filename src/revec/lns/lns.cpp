#include "revec/lns/lns.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "revec/cp/store.hpp"
#include "revec/model/check.hpp"
#include "revec/model/emit_cp.hpp"
#include "revec/obs/metrics.hpp"
#include "revec/obs/trace.hpp"
#include "revec/support/assert.hpp"

namespace revec::lns {

namespace {

/// One relax/repair round. `best` is the repair solve's full store
/// assignment (var parity with the unfrozen emission), which the portfolio
/// hook publishes as the shared incumbent.
struct RoundOutcome {
    bool accepted = false;
    std::vector<int> start;
    std::vector<int> slot;
    std::vector<int> best;
    int makespan = 0;
    cp::SearchStats stats;
};

RoundOutcome run_round(const model::KernelModel& base, const std::vector<int>& inc_start,
                       int inc_makespan, Selector selector, const LnsTuning& tuning,
                       XorShift& rng, const Deadline& deadline,
                       const std::atomic<bool>* stop, obs::TraceBuffer* trace,
                       std::int64_t trace_rid) {
    RoundOutcome out;
    const int n = base.num_nodes();
    // Rounds on a service request's behalf carry its rid; standalone runs
    // (rid 0) emit the payload-free span as before.
    obs::SpanScope round_span(trace, obs::TraceLevel::Phase, "lns_round",
                              trace_rid != 0 ? "rid" : nullptr, trace_rid);

    std::vector<int> relaxed;
    {
        obs::SpanScope relax_span(trace, obs::TraceLevel::Phase, "relax");
        relaxed = select_neighbourhood(base, inc_start, selector, tuning.relax_pct, rng);
        relax_span.result("relaxed", static_cast<std::int64_t>(relaxed.size()));
    }

    // Freeze everything at the incumbent, then re-open the neighbourhood.
    model::KernelModel sub = base;
    sub.frozen_starts.assign(static_cast<std::size_t>(n), -1);
    for (int id = 0; id < n; ++id) {
        sub.frozen_starts[static_cast<std::size_t>(id)] =
            inc_start[static_cast<std::size_t>(id)];
    }
    for (const int id : relaxed) sub.frozen_starts[static_cast<std::size_t>(id)] = -1;

    {
        obs::SpanScope repair_span(trace, obs::TraceLevel::Phase, "repair");
        cp::Store store;
        model::VarTable vt = model::emit_cp(store, sub);
        // A frozen value outside the model bounds, or no room below the
        // incumbent, just rejects the round — the incumbent stays.
        if (!vt.infeasible && store.set_max(vt.makespan, inc_makespan - 1)) {
            cp::SearchOptions opts;
            opts.deadline = deadline;
            opts.max_failures = tuning.repair_failures;
            opts.stop = stop;
            opts.trace = trace;
            cp::SolveResult r = cp::solve(store, vt.phases, vt.makespan, opts);
            out.stats = r.stats;
            if (r.has_solution()) {
                out.start.resize(static_cast<std::size_t>(n));
                out.slot.assign(static_cast<std::size_t>(n), -1);
                for (int id = 0; id < n; ++id) {
                    out.start[static_cast<std::size_t>(id)] =
                        r.value_of(vt.start[static_cast<std::size_t>(id)]);
                }
                for (const auto& [id, var] : vt.slot_of) {
                    out.slot[static_cast<std::size_t>(id)] = r.value_of(var);
                }
                out.makespan = r.value_of(vt.makespan);
                // Acceptance gate: strictly improving AND clean against the
                // base model's own checker — a repair bug can never corrupt
                // the incumbent.
                out.accepted =
                    out.makespan < inc_makespan &&
                    model::check_schedule(base, out.start, out.slot, out.makespan).empty();
                if (out.accepted) out.best = std::move(r.best);
            }
        }
        repair_span.result("accepted", out.accepted ? 1 : 0, "makespan",
                           out.accepted ? out.makespan : inc_makespan);
    }

    obs::instant(trace, obs::TraceLevel::Phase, out.accepted ? "lns_accept" : "lns_reject",
                 "makespan", out.accepted ? out.makespan : inc_makespan);
    round_span.result("accepted", out.accepted ? 1 : 0, "relaxed",
                      static_cast<std::int64_t>(relaxed.size()));
    return out;
}

}  // namespace

void LnsResult::export_metrics(obs::MetricsRegistry& m, const std::string& prefix) const {
    m.add(prefix + "rounds", rounds);
    m.add(prefix + "accepted", accepted);
    m.add(prefix + "rejected", rejected);
    m.set(prefix + "improved", improved ? 1 : 0);
    m.set(prefix + "makespan", makespan);
    stats.export_metrics(m, prefix + "repair.");
}

LnsResult improve_schedule(const model::KernelModel& m, const std::vector<int>& start,
                           const std::vector<int>& slot, int makespan,
                           const LnsOptions& options) {
    REVEC_EXPECTS(!m.modulo.has_value());
    REVEC_EXPECTS(m.fixed_starts.empty());
    REVEC_EXPECTS(m.frozen_starts.empty());
    REVEC_EXPECTS(start.size() == static_cast<std::size_t>(m.num_nodes()));
    REVEC_EXPECTS(!options.tuning.selectors.empty());

    LnsResult res;
    res.start = start;
    res.slot = slot;
    res.slot.resize(static_cast<std::size_t>(m.num_nodes()), -1);
    res.makespan = makespan;

    XorShift rng(options.seed);
    const std::vector<Selector>& sels = options.tuning.selectors;
    while (options.max_rounds < 0 || res.rounds < options.max_rounds) {
        if (options.deadline.expired()) break;
        if (options.stop != nullptr && options.stop->load(std::memory_order_relaxed)) break;
        // The critical path is a proven lower bound: once reached, no round
        // can accept, so stop instead of burning the budget.
        if (res.makespan <= m.critical_path) break;
        const Selector sel =
            sels[static_cast<std::size_t>(res.rounds) % sels.size()];
        RoundOutcome out = run_round(m, res.start, res.makespan, sel, options.tuning, rng,
                                     options.deadline, options.stop, options.trace,
                                     /*trace_rid=*/0);
        ++res.rounds;
        res.stats.absorb(out.stats);
        if (out.accepted) {
            ++res.accepted;
            res.improved = true;
            res.start = std::move(out.start);
            res.slot = std::move(out.slot);
            res.makespan = out.makespan;
            res.incumbent_trail.push_back(out.makespan);
        } else {
            ++res.rejected;
        }
    }
    for (const int s : res.slot) res.slots_used = std::max(res.slots_used, s + 1);
    return res;
}

cp::LnsRoundFn make_portfolio_round(const model::KernelModel& m, const LnsTuning& tuning) {
    REVEC_EXPECTS(!m.modulo.has_value());
    REVEC_EXPECTS(m.fixed_starts.empty());
    REVEC_EXPECTS(m.frozen_starts.empty());
    REVEC_EXPECTS(!tuning.selectors.empty());

    // Capture the model plus one scratch emission's handle table up front:
    // emission is deterministic, so these handles index the incumbent
    // assignments every CP worker publishes.
    struct State {
        model::KernelModel m;
        LnsTuning tuning;
        std::vector<cp::IntVar> start;
        cp::IntVar makespan;
        std::size_t num_vars = 0;
    };
    auto st = std::make_shared<State>();
    st->m = m;
    st->tuning = tuning;
    {
        cp::Store scratch;
        model::VarTable vt = model::emit_cp(scratch, st->m);
        REVEC_EXPECTS(!vt.infeasible);
        st->start = std::move(vt.start);
        st->makespan = vt.makespan;
        st->num_vars = scratch.num_vars();
    }
    std::shared_ptr<const State> state = std::move(st);

    return [state](const cp::LnsRoundContext& ctx) -> cp::LnsRoundResult {
        cp::LnsRoundResult out;
        const std::vector<int>& inc = *ctx.incumbent;
        if (inc.size() != state->num_vars) return out;  // defensive: wrong model
        const int n = state->m.num_nodes();
        std::vector<int> inc_start(static_cast<std::size_t>(n));
        for (int id = 0; id < n; ++id) {
            inc_start[static_cast<std::size_t>(id)] =
                inc[static_cast<std::size_t>(state->start[static_cast<std::size_t>(id)].index())];
        }
        const int inc_makespan =
            inc[static_cast<std::size_t>(state->makespan.index())];
        if (inc_makespan <= state->m.critical_path) return out;  // proven floor

        XorShift rng(ctx.seed);
        const std::vector<Selector>& sels = state->tuning.selectors;
        const Selector sel = sels[static_cast<std::size_t>(ctx.round) % sels.size()];
        RoundOutcome r = run_round(state->m, inc_start, inc_makespan, sel, state->tuning,
                                   rng, ctx.deadline, ctx.stop, ctx.trace, ctx.trace_rid);
        out.stats = r.stats;
        if (r.accepted) {
            out.improved = true;
            out.assignment = std::move(r.best);
            out.objective = r.makespan;
        }
        return out;
    };
}

std::vector<int> complete_assignment(const model::KernelModel& m,
                                     const std::vector<int>& start,
                                     const std::vector<int>& slot) {
    REVEC_EXPECTS(start.size() == static_cast<std::size_t>(m.num_nodes()));
    cp::Store store;
    model::VarTable vt = model::emit_cp(store, m);
    if (vt.infeasible) return {};
    for (int id = 0; id < m.num_nodes(); ++id) {
        if (!store.assign(vt.start[static_cast<std::size_t>(id)],
                          start[static_cast<std::size_t>(id)])) {
            return {};
        }
    }
    for (const auto& [id, var] : vt.slot_of) {
        const auto i = static_cast<std::size_t>(id);
        if (i < slot.size() && slot[i] >= 0) {
            if (!store.assign(var, slot[i])) return {};
        }
    }
    cp::SolveResult r = cp::satisfy(store, vt.phases);
    return r.has_solution() ? std::move(r.best) : std::vector<int>{};
}

}  // namespace revec::lns
