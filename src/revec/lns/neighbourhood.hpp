// Neighbourhood selection for large-neighbourhood search (DESIGN §5h):
// which subset of t_start variables one LNS round un-freezes around the
// incumbent schedule. Three selectors — a uniform random slice, a time
// window around a critical-path sink, and the hottest resource row — are
// rotated by the round loop so structurally different moves get tried.
// Selection is deterministic per (model, incumbent, RNG state), which the
// per-seed determinism tests pin down.
#pragma once

#include <vector>

#include "revec/model/kernel_model.hpp"
#include "revec/support/rng.hpp"

namespace revec::lns {

/// Which neighbourhood one round relaxes.
enum class Selector {
    RandomSlice,         ///< uniform random subset of the op nodes
    CriticalPathWindow,  ///< ops issuing nearest a random critical sink
    ResourceHotRow,      ///< ops crowding the most-utilized resource cycle
};

const char* selector_name(Selector s);

/// Pick the node ids whose start times one LNS round relaxes. `start` is
/// the incumbent schedule (one entry per node). The returned set is sorted
/// ascending and:
///  - contains only op nodes plus their DataProduce successors (eq. 4 ties
///    a produced data node's start to its producer's, so freezing one side
///    while relaxing the other would make the subproblem trivially UNSAT);
///  - never contains input nodes (their starts are pinned to 0 anyway);
///  - relaxes ceil(relax_pct * |ops|) ops, clamped to [1, |ops|], before
///    the DataProduce closure widens it.
std::vector<int> select_neighbourhood(const model::KernelModel& m,
                                      const std::vector<int>& start, Selector selector,
                                      double relax_pct, XorShift& rng);

}  // namespace revec::lns
