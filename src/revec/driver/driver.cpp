#include "revec/driver/driver.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <thread>

#include "revec/arch/spec_io.hpp"
#include "revec/codegen/codegen.hpp"
#include "revec/cp/store.hpp"
#include "revec/ir/analysis.hpp"
#include "revec/ir/dot.hpp"
#include "revec/ir/passes.hpp"
#include "revec/ir/xml_io.hpp"
#include "revec/model/json.hpp"
#include "revec/model/kernel_model.hpp"
#include "revec/pipeline/modulo.hpp"
#include "revec/sched/model.hpp"
#include "revec/sched/schedule_io.hpp"
#include "revec/sched/verify.hpp"
#include "revec/sim/simulator.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/strings.hpp"
#include "revec/support/table.hpp"

namespace revec::driver {

std::string usage() {
    return R"(usage: revecc <ir.xml> [options]

Schedules an IR file (the XML a DSL program run emits) for the EIT
reconfigurable vector architecture.

options:
  --emit=WHAT        schedule (default) | listing | dot | stats | modulo
  --slots=N          memory slots available (default: full memory)
  --timeout-ms=N     solver budget per solve (default 30000)
  --no-merge         skip the pipeline-merging pass
  --no-memory        schedule without memory allocation
  --include-reconfigs  reconfiguration-aware modulo model (with --emit=modulo)
  --simulate         execute the generated code and check the outputs
  --threads=N        parallel portfolio workers sharing one incumbent bound
                     (default 1 = the sequential solver)
  --portfolio        shorthand for --threads=<hardware concurrency, max 8>
  --lns=MODE         on races large-neighbourhood-search workers alongside
                     the portfolio (default 2 unless --lns-workers says
                     otherwise); off (default) disables them
  --lns-workers=N    number of LNS workers (implies --lns=on)
  --lns-relax-pct=P  percent of the ops each LNS round relaxes (1-100,
                     default 30)
  --seed=N           portfolio diversification seed (default 0x5eed)
  --warm-start=MODE  on (default) seeds the exact search with a verified
                     heuristic schedule and falls back to it on timeout;
                     off runs the cold exact solver only
  --heuristic-only   skip the exact solver; emit the heuristic schedule
  --lanes=N          override the number of vector lanes
  --arch=FILE        architecture description XML (see arch/spec_io.hpp)
  --save-schedule=F  write the schedule artifact XML to F
  --dump-model=F     write the lowered scheduling model (KernelModel) as JSON
                     to F — the solver-agnostic problem description shared by
                     the CP emitter, the heuristics, and the verifier
  --trace=F          write the solve timeline to F: Chrome trace-event JSON
                     (load into Perfetto / chrome://tracing for per-worker
                     timelines), or a deterministic JSONL stream when F ends
                     in .jsonl
  --trace-level=L    off | phase (default with --trace) | node; node adds
                     per-search-node and engine-escalation events
  --metrics=F        write end-of-run metrics JSON to F (search counters,
                     engine counters, per-propagator-class profile)
  --help             this text

exit codes:
  0  proven optimal (or a non-solver emit mode succeeded)
  1  no solution exists (UNSAT), or a non-solver usage error
  2  internal error: the schedule failed independent verification
  3  simulation mismatch or memory-rule violation
  4  feasible solution found, optimality unproven (solver timeout)
  5  heuristic fallback schedule returned (exact solver found nothing)
  6  timeout with no solution at all
)";
}

const std::vector<std::string>& known_flags() {
    // The single flag inventory: parse_args dispatches on these, usage()
    // must document every one (test_driver pins that), and the
    // did-you-mean suggester searches them.
    static const std::vector<std::string> kFlags = {
        "--emit",         "--slots",     "--timeout-ms",   "--no-merge",
        "--no-memory",    "--include-reconfigs",           "--simulate",
        "--threads",      "--portfolio", "--seed",         "--warm-start",
        "--lns",          "--lns-workers",                 "--lns-relax-pct",
        "--heuristic-only",              "--lanes",        "--arch",
        "--save-schedule",               "--dump-model",   "--trace",
        "--trace-level",  "--metrics",   "--help",
    };
    return kFlags;
}

namespace {

/// "did you mean" helper: the closest known flag name within a small edit
/// distance of the mistyped one, or empty.
std::string closest_flag(const std::string& arg) {
    const std::string name = arg.substr(0, arg.find('='));
    std::string best;
    std::size_t best_dist = 3;  // suggest only when plausibly a typo
    for (const std::string& flag : known_flags()) {
        const std::size_t d = edit_distance(name, flag);
        if (d < best_dist) {
            best_dist = d;
            best = flag;
        }
    }
    return best;
}

}  // namespace

std::optional<Options> parse_args(const std::vector<std::string>& args, std::ostream& out) {
    Options opts;
    bool trace_level_given = false;
    bool lns_on = false;
    bool lns_off = false;
    for (const std::string& arg : args) {
        if (arg == "--help" || arg == "-h") {
            out << usage();
            return std::nullopt;
        }
        if (arg == "--no-merge") {
            opts.merge_pass = false;
        } else if (arg == "--no-memory") {
            opts.memory = false;
        } else if (arg == "--include-reconfigs") {
            opts.include_reconfigs = true;
        } else if (arg == "--simulate") {
            opts.simulate = true;
        } else if (starts_with(arg, "--emit=")) {
            opts.emit = arg.substr(7);
            if (opts.emit != "schedule" && opts.emit != "listing" && opts.emit != "dot" &&
                opts.emit != "stats" && opts.emit != "modulo") {
                throw Error("unknown --emit value '" + opts.emit + "'");
            }
        } else if (starts_with(arg, "--warm-start=")) {
            const std::string mode = arg.substr(13);
            if (mode == "on") {
                opts.warm_start = true;
            } else if (mode == "off") {
                opts.warm_start = false;
            } else {
                throw Error("--warm-start must be 'on' or 'off'");
            }
        } else if (arg == "--heuristic-only") {
            opts.heuristic_only = true;
        } else if (arg == "--portfolio") {
            const unsigned hw = std::thread::hardware_concurrency();
            opts.threads = static_cast<int>(std::min(hw == 0 ? 4u : hw, 8u));
        } else if (starts_with(arg, "--threads=")) {
            opts.threads = static_cast<int>(parse_int(arg.substr(10)));
            if (opts.threads < 1) throw Error("--threads must be >= 1");
        } else if (starts_with(arg, "--lns=")) {
            const std::string mode = arg.substr(6);
            if (mode == "on") {
                lns_on = true;
            } else if (mode == "off") {
                lns_off = true;
            } else {
                throw Error("--lns must be 'on' or 'off'");
            }
        } else if (starts_with(arg, "--lns-workers=")) {
            opts.lns_workers = static_cast<int>(parse_int(arg.substr(14)));
            if (opts.lns_workers < 1) throw Error("--lns-workers must be >= 1");
        } else if (starts_with(arg, "--lns-relax-pct=")) {
            opts.lns_relax_pct = static_cast<int>(parse_int(arg.substr(16)));
            if (opts.lns_relax_pct < 1 || opts.lns_relax_pct > 100) {
                throw Error("--lns-relax-pct must be in [1, 100]");
            }
        } else if (starts_with(arg, "--seed=")) {
            opts.seed = static_cast<std::uint32_t>(parse_int(arg.substr(7)));
        } else if (starts_with(arg, "--slots=")) {
            opts.num_slots = static_cast<int>(parse_int(arg.substr(8)));
        } else if (starts_with(arg, "--timeout-ms=")) {
            opts.timeout_ms = parse_int(arg.substr(13));
        } else if (starts_with(arg, "--lanes=")) {
            opts.lanes = static_cast<int>(parse_int(arg.substr(8)));
        } else if (starts_with(arg, "--arch=")) {
            opts.arch_path = arg.substr(7);
        } else if (starts_with(arg, "--save-schedule=")) {
            opts.save_schedule_path = arg.substr(16);
        } else if (starts_with(arg, "--dump-model=")) {
            opts.dump_model_path = arg.substr(13);
        } else if (starts_with(arg, "--trace=")) {
            opts.trace_path = arg.substr(8);
            if (opts.trace_path.empty()) throw Error("--trace needs a file path");
        } else if (starts_with(arg, "--trace-level=")) {
            const std::string level = arg.substr(14);
            const auto parsed = obs::parse_trace_level(level);
            if (!parsed.has_value()) {
                throw Error("unknown --trace-level '" + level +
                            "' (expected off, phase, or node)");
            }
            opts.trace_level = *parsed;
            trace_level_given = true;
        } else if (starts_with(arg, "--metrics=")) {
            opts.metrics_path = arg.substr(10);
            if (opts.metrics_path.empty()) throw Error("--metrics needs a file path");
        } else if (starts_with(arg, "--")) {
            std::string message = "unknown option '" + arg + "'";
            const std::string suggestion = closest_flag(arg);
            if (!suggestion.empty()) message += " — did you mean '" + suggestion + "'?";
            throw Error(message + " (try --help)");
        } else if (opts.input_path.empty()) {
            opts.input_path = arg;
        } else {
            throw Error("multiple input files given: '" + opts.input_path + "' and '" + arg +
                        "'");
        }
    }
    if (opts.input_path.empty()) throw Error("no input file (try --help)");
    if (lns_on && lns_off) throw Error("--lns given as both 'on' and 'off'");
    // --lns=on without a count defaults to 2 workers; --lns=off wins over a
    // --lns-workers count; --lns-workers=N alone implies on.
    if (lns_off) {
        opts.lns_workers = 0;
    } else if (lns_on && opts.lns_workers == 0) {
        opts.lns_workers = 2;
    }
    // Asking for a trace file implies phase-level tracing; an explicit
    // --trace-level (any value, including off) wins.
    if (!opts.trace_path.empty() && !trace_level_given) {
        opts.trace_level = obs::TraceLevel::Phase;
    }
    return opts;
}

namespace {

/// Human-readable solve status for the reports.
const char* status_word(cp::SolveStatus status) {
    switch (status) {
        case cp::SolveStatus::Optimal: return "proven optimal";
        case cp::SolveStatus::Unsat: return "no solution exists (UNSAT)";
        case cp::SolveStatus::SatTimeout: return "best found, optimality unproven (timeout)";
        case cp::SolveStatus::Timeout: return "timeout without a solution";
        case cp::SolveStatus::HeuristicFallback: return "heuristic fallback";
    }
    return "unknown";
}

/// Exit code for a feasible solve (see driver.hpp): Optimal -> 0,
/// SatTimeout -> 4, HeuristicFallback -> 5.
int feasible_exit_code(cp::SolveStatus status) {
    switch (status) {
        case cp::SolveStatus::SatTimeout: return 4;
        case cp::SolveStatus::HeuristicFallback: return 5;
        default: return 0;
    }
}

arch::ArchSpec spec_for(const Options& options) {
    arch::ArchSpec spec = options.arch_path.empty() ? arch::ArchSpec::eit()
                                                    : arch::load_spec(options.arch_path);
    if (options.lanes > 0) spec.vector_lanes = options.lanes;
    spec.validate();
    return spec;
}

int emit_stats(const arch::ArchSpec& spec, const ir::Graph& g, std::ostream& out) {
    const ir::GraphStats st = ir::graph_stats(spec, g);
    Table t({"property", "value"});
    t.add_row({"name", g.name()});
    t.add_row({"|V|", std::to_string(st.num_nodes)});
    t.add_row({"|E|", std::to_string(st.num_edges)});
    t.add_row({"|Cr.P| (cc)", std::to_string(st.critical_path)});
    t.add_row({"vector ops", std::to_string(st.num_vector_ops)});
    t.add_row({"matrix ops", std::to_string(st.num_matrix_ops)});
    t.add_row({"scalar ops", std::to_string(st.num_scalar_ops)});
    t.add_row({"index/merge ops", std::to_string(st.num_index_merge)});
    t.add_row({"vector data", std::to_string(st.num_vector_data)});
    t.add_row({"scalar data", std::to_string(st.num_scalar_data)});
    t.print(out);
    return 0;
}

/// Serialize the requested observability artifacts. Called on every exit
/// path that has a solver result — including infeasible solves, which are
/// exactly the runs worth profiling.
void write_observability(const Options& options, const obs::TraceSink* sink,
                         const obs::MetricsRegistry& metrics, std::ostream& out) {
    if (sink != nullptr && !options.trace_path.empty()) {
        sink->save(options.trace_path);
        out << "trace written to " << options.trace_path << "\n";
    }
    if (!options.metrics_path.empty()) {
        metrics.save_json(options.metrics_path);
        out << "metrics written to " << options.metrics_path << "\n";
    }
}

int emit_modulo(const Options& options, const arch::ArchSpec& spec, const ir::Graph& g,
                obs::TraceSink* sink, std::ostream& out) {
    pipeline::ModuloOptions mopts;
    mopts.spec = spec;
    mopts.include_reconfigs = options.include_reconfigs;
    mopts.timeout_ms = options.timeout_ms;
    mopts.solver.threads = options.threads;
    mopts.solver.seed = options.seed;
    mopts.solver.trace = sink;
    mopts.solver.profile = !options.metrics_path.empty();
    mopts.warm_start = options.warm_start;
    mopts.heuristic_only = options.heuristic_only;
    const pipeline::ModuloResult r = pipeline::modulo_schedule(g, mopts);
    write_observability(options, sink, collect_metrics(r), out);
    if (!r.feasible()) {
        out << "modulo scheduling failed (" << status_word(r.status) << ")\n";
        return r.status == cp::SolveStatus::Unsat ? 1 : 6;
    }
    out << "II lower bound: " << r.ii_lower_bound << "\n";
    out << "initial II:     " << r.initial_ii << "\n";
    out << "reconfigs:      " << r.reconfigs << "\n";
    out << "actual II:      " << r.actual_ii << "\n";
    out << "throughput:     " << format_fixed(r.throughput, 4) << " iterations/cc\n";
    out << "solve time:     " << format_fixed(r.time_ms, 0) << " ms\n";
    out << "status:         " << status_word(r.status) << "\n";
    return feasible_exit_code(r.status);
}

}  // namespace

obs::MetricsRegistry collect_metrics(const sched::Schedule& s) {
    obs::MetricsRegistry m;
    s.stats.export_metrics(m, "solve.");
    s.prop_stats.export_metrics(m, "engine.");
    cp::export_prop_profile_metrics(s.prop_profile, m);
    m.set("solve.makespan", s.makespan);
    m.set("solve.slots_used", s.slots_used);
    m.label("solve.status", status_word(s.status));
    std::int64_t lns_workers = 0;
    for (const cp::WorkerReport& w : s.workers) {
        const std::string prefix = "worker." + std::to_string(w.config_index) + ".";
        w.stats.export_metrics(m, prefix);
        m.set(prefix + "proved", w.proved ? 1 : 0);
        m.set(prefix + "best_objective", w.best_objective);
        m.label(prefix + "label", w.label);
        if (w.is_lns) {
            ++lns_workers;
            m.set(prefix + "lns_rounds", w.lns_rounds);
            m.set(prefix + "lns_accepted", w.lns_accepted);
            m.set(prefix + "lns_rejected", w.lns_rejected);
            m.add("lns.rounds", w.lns_rounds);
            m.add("lns.accepted", w.lns_accepted);
            m.add("lns.rejected", w.lns_rejected);
        }
    }
    if (lns_workers > 0) m.set("lns.workers", lns_workers);
    return m;
}

obs::MetricsRegistry collect_metrics(const pipeline::ModuloResult& r) {
    obs::MetricsRegistry m;
    r.stats.export_metrics(m, "solve.");
    r.prop_stats.export_metrics(m, "engine.");
    cp::export_prop_profile_metrics(r.prop_profile, m);
    m.set("modulo.ii_lower_bound", r.ii_lower_bound);
    m.set("modulo.initial_ii", r.initial_ii);
    m.set("modulo.reconfigs", r.reconfigs);
    m.set("modulo.actual_ii", r.actual_ii);
    m.gauge("modulo.throughput", r.throughput);
    m.gauge("modulo.time_ms", r.time_ms);
    m.label("solve.status", status_word(r.status));
    return m;
}

int run(const Options& options, std::ostream& out) {
    const arch::ArchSpec spec = spec_for(options);
    ir::Graph g = ir::load_xml(options.input_path);
    if (options.merge_pass) g = ir::merge_pipeline_ops(g);

    if (!options.dump_model_path.empty()) {
        // Exactly the model the scheduling path solves — resolved
        // num_slots AND the derived horizon — so a dump replayed through
        // schedule_model (revecd does this) reproduces this run's
        // schedule bit for bit.
        sched::ScheduleOptions dump_opts;
        dump_opts.spec = spec;
        dump_opts.num_slots = options.num_slots;
        dump_opts.memory_allocation = options.memory;
        model::save_json(sched::lower_for_schedule(g, dump_opts), options.dump_model_path);
        out << "model written to " << options.dump_model_path << "\n";
    }

    if (options.emit == "stats") return emit_stats(spec, g, out);
    if (options.emit == "dot") {
        out << ir::to_dot(g);
        return 0;
    }

    // One trace sink for the whole solve; workers register their own tracks.
    std::unique_ptr<obs::TraceSink> sink;
    if (!options.trace_path.empty() && options.trace_level != obs::TraceLevel::Off) {
        sink = std::make_unique<obs::TraceSink>(options.trace_level);
    }

    if (options.emit == "modulo") return emit_modulo(options, spec, g, sink.get(), out);

    sched::ScheduleOptions sopts;
    sopts.spec = spec;
    sopts.num_slots = options.num_slots;
    sopts.timeout_ms = options.timeout_ms;
    sopts.memory_allocation = options.memory;
    sopts.solver.threads = options.threads;
    sopts.solver.lns_workers = options.lns_workers;
    sopts.lns.relax_pct = static_cast<double>(options.lns_relax_pct) / 100.0;
    sopts.solver.seed = options.seed;
    sopts.solver.trace = sink.get();
    sopts.solver.profile = !options.metrics_path.empty();
    sopts.warm_start = options.warm_start;
    sopts.heuristic_only = options.heuristic_only;
    const sched::Schedule s = sched::schedule_kernel(g, sopts);
    write_observability(options, sink.get(), collect_metrics(s), out);
    if (!s.feasible()) {
        out << "scheduling failed: " << status_word(s.status) << "\n";
        return s.status == cp::SolveStatus::Unsat ? 1 : 6;
    }
    sched::VerifyOptions vo;
    vo.check_memory = options.memory;
    const auto problems = sched::verify_schedule(spec, g, s, vo);
    if (!problems.empty()) {
        out << "internal error: schedule failed verification: " << problems.front() << "\n";
        return 2;
    }

    if (!options.save_schedule_path.empty()) {
        save_schedule(g, s, options.save_schedule_path);
        out << "schedule written to " << options.save_schedule_path << "\n";
    }

    if (options.emit == "schedule") {
        out << "makespan:    " << s.makespan << " cc (" << status_word(s.status) << ")\n";
        out << "slots used:  " << s.slots_used << "\n";
        out << "solve:       " << s.stats.nodes << " nodes, " << s.stats.failures
            << " failures, " << format_fixed(s.stats.time_ms, 0) << " ms\n";
        for (const cp::WorkerReport& w : s.workers) {
            if (w.is_lns) {
                out << "  worker " << w.config_index << " [" << w.label
                    << "]: " << w.lns_rounds << " rounds, " << w.lns_accepted
                    << " accepted, " << w.lns_rejected << " rejected"
                    << (w.best_objective >= 0
                            ? ", best " + std::to_string(w.best_objective)
                            : "")
                    << "\n";
                continue;
            }
            out << "  worker " << w.config_index << " [" << w.label << "]: " << w.stats.nodes
                << " nodes, " << w.stats.failures << " failures, " << w.stats.cutoff_prunes
                << " bound prunes, " << w.stats.restarts << " restarts"
                << (w.proved ? ", proved" : "")
                << (w.best_objective >= 0
                        ? ", best " + std::to_string(w.best_objective)
                        : "")
                << "\n";
        }
    }

    if (options.emit == "listing" || options.simulate) {
        if (!options.memory) {
            out << "machine code requires memory allocation (omit --no-memory)\n";
            return 1;
        }
        const codegen::MachineProgram prog = codegen::generate_code(spec, g, s);
        if (options.emit == "listing") out << prog.to_listing(g);
        if (options.simulate) {
            const sim::SimResult result = sim::simulate(spec, g, prog);
            out << "simulation:  " << result.cycles << " cycles, "
                << result.reconfigurations << " reconfigurations, outputs "
                << (result.outputs_match ? "match" : "MISMATCH") << " (max error "
                << result.max_output_error << ")\n";
            if (!result.violations.empty()) {
                out << "memory-rule violations: " << result.violations.front() << "\n";
                return 3;
            }
            if (!result.outputs_match) return 3;
        }
    }
    return feasible_exit_code(s.status);
}

}  // namespace revec::driver
