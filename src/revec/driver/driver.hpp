// The command-line driver logic behind tools/revecc: the paper's Fig. 2
// flow as a library. Takes an IR file (the XML a DSL run emits), runs
// scheduling + memory allocation, optionally pipelines, and renders the
// outputs (schedule report, machine listing, DOT). Kept as a library so
// the driver is unit-testable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "revec/arch/spec.hpp"
#include "revec/obs/metrics.hpp"
#include "revec/obs/trace.hpp"

namespace revec::sched {
struct Schedule;
}  // namespace revec::sched

namespace revec::pipeline {
struct ModuloResult;
}  // namespace revec::pipeline

namespace revec::driver {

/// Parsed command line.
struct Options {
    std::string input_path;           ///< IR XML ("-" reads stdin is not supported)
    std::string emit = "schedule";    ///< schedule | listing | dot | stats | modulo
    int num_slots = -1;               ///< -1 = full memory
    std::int64_t timeout_ms = 30000;
    bool merge_pass = true;           ///< run merge_pipeline_ops first
    bool memory = true;               ///< allocate memory slots
    bool include_reconfigs = false;   ///< for --emit=modulo
    bool simulate = false;            ///< run the simulator after codegen
    int threads = 1;                  ///< portfolio workers (1 = sequential solver)
    int lns_workers = 0;              ///< LNS workers raced alongside (0 = off)
    int lns_relax_pct = 30;           ///< percent of ops each LNS round relaxes
    std::uint32_t seed = 0x5eedu;     ///< portfolio diversification seed
    bool warm_start = true;           ///< heuristic incumbent + anytime fallback
    bool heuristic_only = false;      ///< skip the exact solver entirely
    int lanes = -1;                   ///< override vector lanes (-1 = EIT)
    std::string arch_path;            ///< architecture description XML ("" = EIT)
    std::string save_schedule_path;   ///< write the schedule artifact here ("" = no)
    std::string dump_model_path;      ///< write the lowered KernelModel JSON here ("" = no)

    /// Observability outputs (DESIGN §5g). --trace=F writes the solve
    /// timeline (Chrome trace JSON, or JSONL with a .jsonl extension);
    /// --metrics=F writes the metrics registry JSON and turns on
    /// per-propagator-class profiling. trace_level defaults to Phase as
    /// soon as --trace is given; --trace-level=node adds per-node events.
    std::string trace_path;
    std::string metrics_path;
    obs::TraceLevel trace_level = obs::TraceLevel::Off;
};

/// Parse argv-style arguments (excluding argv[0]). Throws revec::Error on
/// malformed input; returns nullopt when help was requested (usage already
/// printed to `out`).
std::optional<Options> parse_args(const std::vector<std::string>& args, std::ostream& out);

/// Run the flow and write the requested artifact to `out`.
///
/// Exit codes distinguish how the solve ended:
///   0  proven optimal (or a non-solver emit mode succeeded)
///   1  no solution exists (UNSAT), or a non-solver usage error
///   2  internal error: the schedule failed independent verification
///   3  simulation mismatch or memory-rule violation
///   4  feasible solution found, optimality unproven (solver timeout)
///   5  heuristic fallback schedule returned (exact solver found nothing)
///   6  timeout with no solution at all
int run(const Options& options, std::ostream& out);

/// Usage text, including the exit-code table.
std::string usage();

/// Every flag parse_args understands, in usage order. The single
/// inventory behind usage(), the did-you-mean suggester, and the
/// help-completeness test — add a flag in one place and the test fails
/// until usage() documents it.
const std::vector<std::string>& known_flags();

/// The metrics registry for one schedule solve: SearchStats under "solve.",
/// engine counters under "engine.", per-propagator-class profiles under
/// "prop.<Class>.", per-worker counters under "worker.<k>." (LNS workers
/// additionally export "worker.<k>.lns_*" and aggregate into "lns.workers"
/// / "lns.rounds" / "lns.accepted" / "lns.rejected"), plus result
/// labels/gauges. This is what `--metrics=F` serializes; exposed for the
/// driver tests (counter totals must equal the solver's own counters).
obs::MetricsRegistry collect_metrics(const sched::Schedule& s);

/// Likewise for a modulo scan (totals accumulated over every per-II solve).
obs::MetricsRegistry collect_metrics(const pipeline::ModuloResult& r);

}  // namespace revec::driver
