#include "revec/dsl/ops.hpp"

#include <vector>

#include "revec/dsl/eval.hpp"
#include "revec/support/assert.hpp"

namespace revec::dsl {

namespace {

using ir::NodeCat;
using ir::Value;

Program& owner(const Vector& v) {
    if (!v.bound()) throw Error("use of an unbound (default-constructed) DSL vector");
    return *v.program();
}

Program& owner(const Scalar& s) {
    if (!s.bound()) throw Error("use of an unbound (default-constructed) DSL scalar");
    return *s.program();
}

Value val(const Vector& v) { return Value::vector(v.value()); }
Value val(const Scalar& s) { return Value::scalar(s.value()); }

/// Trace + evaluate a single-result operation.
template <typename Result>
Result emit(Program& p, NodeCat op_cat, const char* op, const std::vector<int>& arg_nodes,
            const std::vector<Value>& arg_values, int imm = 0) {
    const Value result = apply_op(op, arg_values, imm).front();
    constexpr NodeCat result_cat =
        std::is_same_v<Result, Scalar> ? NodeCat::ScalarData : NodeCat::VectorData;
    const int node = p.trace(op_cat, op, arg_nodes, result_cat, imm);
    if constexpr (std::is_same_v<Result, Scalar>) {
        return Scalar(&p, node, result.s());
    } else {
        return Vector(&p, node, result.elems);
    }
}

/// Trace + evaluate a matrix-result operation.
Matrix emit_matrix(Program& p, const char* op, const std::vector<int>& arg_nodes,
                   const std::vector<Value>& arg_values) {
    const std::vector<Value> rows = apply_op(op, arg_values, 0);
    REVEC_ASSERT(rows.size() == 4);
    const std::array<int, 4> outs = p.trace_matrix_result(op, arg_nodes);
    std::array<Vector, 4> result;
    for (std::size_t i = 0; i < 4; ++i) {
        result[i] = Vector(&p, outs[i], rows[i].elems);
    }
    return Matrix(std::move(result));
}

std::vector<int> matrix_nodes(Program& p, const Matrix& m) {
    std::vector<int> nodes;
    for (const Vector& r : m.rows()) {
        p.check_owns(r);
        nodes.push_back(r.node());
    }
    return nodes;
}

std::vector<Value> matrix_values(const Matrix& m) {
    std::vector<Value> values;
    for (const Vector& r : m.rows()) values.push_back(val(r));
    return values;
}

}  // namespace

// -- vector core ---------------------------------------------------------------

Vector v_add(const Vector& a, const Vector& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Vector>(p, NodeCat::VectorOp, "v_add", {a.node(), b.node()}, {val(a), val(b)});
}

Vector v_sub(const Vector& a, const Vector& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Vector>(p, NodeCat::VectorOp, "v_sub", {a.node(), b.node()}, {val(a), val(b)});
}

Vector v_mul(const Vector& a, const Vector& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Vector>(p, NodeCat::VectorOp, "v_mul", {a.node(), b.node()}, {val(a), val(b)});
}

Vector v_cmac(const Vector& a, const Vector& b, const Vector& c) {
    Program& p = owner(a);
    p.check_owns(b);
    p.check_owns(c);
    return emit<Vector>(p, NodeCat::VectorOp, "v_cmac", {a.node(), b.node(), c.node()},
                        {val(a), val(b), val(c)});
}

Vector v_scale(const Vector& a, const Scalar& s) {
    Program& p = owner(a);
    p.check_owns(s);
    return emit<Vector>(p, NodeCat::VectorOp, "v_scale", {a.node(), s.node()}, {val(a), val(s)});
}

Vector v_axpy(const Vector& y, const Scalar& s, const Vector& x) {
    Program& p = owner(y);
    p.check_owns(s);
    p.check_owns(x);
    return emit<Vector>(p, NodeCat::VectorOp, "v_axpy", {y.node(), s.node(), x.node()},
                        {val(y), val(s), val(x)});
}

Scalar v_dotP(const Vector& a, const Vector& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Scalar>(p, NodeCat::VectorOp, "v_dotP", {a.node(), b.node()}, {val(a), val(b)});
}

Scalar v_dotu(const Vector& a, const Vector& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Scalar>(p, NodeCat::VectorOp, "v_dotu", {a.node(), b.node()}, {val(a), val(b)});
}

Scalar v_squsum(const Vector& a) {
    Program& p = owner(a);
    return emit<Scalar>(p, NodeCat::VectorOp, "v_squsum", {a.node()}, {val(a)});
}

// -- vector pre-/post-processing ---------------------------------------------------

Vector pre_conj(const Vector& a) {
    Program& p = owner(a);
    return emit<Vector>(p, NodeCat::VectorOp, "pre_conj", {a.node()}, {val(a)});
}

Vector pre_mask(const Vector& a, int mask_bits) {
    REVEC_EXPECTS(mask_bits > 0 && mask_bits < (1 << ir::kVecLen));
    Program& p = owner(a);
    return emit<Vector>(p, NodeCat::VectorOp, "pre_mask", {a.node()}, {val(a)}, mask_bits);
}

Vector post_sort(const Vector& a) {
    Program& p = owner(a);
    return emit<Vector>(p, NodeCat::VectorOp, "post_sort", {a.node()}, {val(a)});
}

Scalar post_accum(const Vector& a) {
    Program& p = owner(a);
    return emit<Scalar>(p, NodeCat::VectorOp, "post_accum", {a.node()}, {val(a)});
}

// -- matrix operations ----------------------------------------------------------------

Matrix m_add(const Matrix& a, const Matrix& b) {
    Program& p = owner(a.row(0));
    std::vector<int> nodes = matrix_nodes(p, a);
    const std::vector<int> bn = matrix_nodes(p, b);
    nodes.insert(nodes.end(), bn.begin(), bn.end());
    std::vector<Value> values = matrix_values(a);
    const std::vector<Value> bv = matrix_values(b);
    values.insert(values.end(), bv.begin(), bv.end());
    return emit_matrix(p, "m_add", nodes, values);
}

Matrix m_sub(const Matrix& a, const Matrix& b) {
    Program& p = owner(a.row(0));
    std::vector<int> nodes = matrix_nodes(p, a);
    const std::vector<int> bn = matrix_nodes(p, b);
    nodes.insert(nodes.end(), bn.begin(), bn.end());
    std::vector<Value> values = matrix_values(a);
    const std::vector<Value> bv = matrix_values(b);
    values.insert(values.end(), bv.begin(), bv.end());
    return emit_matrix(p, "m_sub", nodes, values);
}

Matrix m_scale(const Matrix& a, const Scalar& s) {
    Program& p = owner(a.row(0));
    p.check_owns(s);
    std::vector<int> nodes = matrix_nodes(p, a);
    nodes.push_back(s.node());
    std::vector<Value> values = matrix_values(a);
    values.push_back(val(s));
    return emit_matrix(p, "m_scale", nodes, values);
}

Vector m_squsum(const Matrix& a) {
    Program& p = owner(a.row(0));
    return emit<Vector>(p, NodeCat::MatrixOp, "m_squsum", matrix_nodes(p, a), matrix_values(a));
}

Vector m_vmul(const Matrix& a, const Vector& x) {
    Program& p = owner(a.row(0));
    p.check_owns(x);
    std::vector<int> nodes = matrix_nodes(p, a);
    nodes.push_back(x.node());
    std::vector<Value> values = matrix_values(a);
    values.push_back(val(x));
    return emit<Vector>(p, NodeCat::MatrixOp, "m_vmul", nodes, values);
}

Matrix m_hermitian(const Matrix& a) {
    Program& p = owner(a.row(0));
    return emit_matrix(p, "m_hermitian", matrix_nodes(p, a), matrix_values(a));
}

// -- scalar accelerator ---------------------------------------------------------------

Scalar s_add(const Scalar& a, const Scalar& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Scalar>(p, NodeCat::ScalarOp, "s_add", {a.node(), b.node()}, {val(a), val(b)});
}

Scalar s_sub(const Scalar& a, const Scalar& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Scalar>(p, NodeCat::ScalarOp, "s_sub", {a.node(), b.node()}, {val(a), val(b)});
}

Scalar s_mul(const Scalar& a, const Scalar& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Scalar>(p, NodeCat::ScalarOp, "s_mul", {a.node(), b.node()}, {val(a), val(b)});
}

Scalar s_div(const Scalar& a, const Scalar& b) {
    Program& p = owner(a);
    p.check_owns(b);
    return emit<Scalar>(p, NodeCat::ScalarOp, "s_div", {a.node(), b.node()}, {val(a), val(b)});
}

Scalar s_sqrt(const Scalar& a) {
    Program& p = owner(a);
    return emit<Scalar>(p, NodeCat::ScalarOp, "s_sqrt", {a.node()}, {val(a)});
}

Scalar s_rsqrt(const Scalar& a) {
    Program& p = owner(a);
    return emit<Scalar>(p, NodeCat::ScalarOp, "s_rsqrt", {a.node()}, {val(a)});
}

Scalar s_cordic_mag(const Scalar& a) {
    Program& p = owner(a);
    return emit<Scalar>(p, NodeCat::ScalarOp, "s_cordic_mag", {a.node()}, {val(a)});
}

// -- index / merge ----------------------------------------------------------------------

Scalar index(const Vector& v, int position) {
    REVEC_EXPECTS(position >= 0 && position < ir::kVecLen);
    Program& p = owner(v);
    return emit<Scalar>(p, NodeCat::IndexOp, "index", {v.node()}, {val(v)}, position);
}

Vector merge(const Scalar& a, const Scalar& b, const Scalar& c, const Scalar& d) {
    Program& p = owner(a);
    p.check_owns(b);
    p.check_owns(c);
    p.check_owns(d);
    return emit<Vector>(p, NodeCat::MergeOp, "merge", {a.node(), b.node(), c.node(), d.node()},
                        {val(a), val(b), val(c), val(d)});
}

}  // namespace revec::dsl
