// The DSL trace context. A Program is what "running the DSL program"
// produces: every operation both computes its value eagerly and appends
// operation/data nodes to the traced IR graph.
#pragma once

#include <string>
#include <vector>

#include "revec/dsl/value.hpp"
#include "revec/ir/graph.hpp"

namespace revec::dsl {

class Program {
public:
    explicit Program(std::string name) : graph_(std::move(name)) {}

    Program(const Program&) = delete;
    Program& operator=(const Program&) = delete;

    // -- program inputs -------------------------------------------------------
    Scalar in_scalar(ir::Complex v, std::string label = {});
    Vector in_vector(Vector::Elems v, std::string label = {});
    /// Convenience matching listing 1's EITVector(1,2,3,4).
    Vector in_vector(double a, double b, double c, double d, std::string label = {});
    Matrix in_matrix(std::array<Vector, 4> rows);
    Matrix in_matrix(std::array<Vector::Elems, 4> rows, std::string label = {});

    // -- program outputs -------------------------------------------------------
    void mark_output(const Scalar& s);
    void mark_output(const Vector& v);
    void mark_output(const Matrix& m);

    /// The traced IR (validated). Call after building the whole program.
    const ir::Graph& ir() const { return graph_; }

    // -- trace API used by the operation library (revec/dsl/ops.hpp) ---------
    /// Append an operation node consuming `args` (data node ids, operand
    /// order) and one result data node; returns the result data node id.
    int trace(ir::NodeCat op_cat, const std::string& op, const std::vector<int>& args,
              ir::NodeCat result_cat, int imm = 0, const std::string& label = {});
    /// Append an operation with four vector result nodes (matrix result);
    /// returns the four data node ids.
    std::array<int, 4> trace_matrix_result(const std::string& op, const std::vector<int>& args,
                                           const std::string& label = {});

    /// Validate ownership: all values must belong to this program.
    void check_owns(const Scalar& s) const;
    void check_owns(const Vector& v) const;

private:
    ir::Graph graph_;
};

}  // namespace revec::dsl
