// DSL value types (paper §3.1: EITScalar / EITVector / EITMatrix). Each
// value carries both its computed contents (so a DSL program can be debugged
// functionally by just running it) and the id of the IR data node it traces
// to. A matrix is four row vectors — the IR never has matrix data nodes
// (§3.2.1: matrix data is expanded into four vector data nodes).
#pragma once

#include <array>

#include "revec/ir/graph.hpp"

namespace revec::dsl {

class Program;

/// A traced complex scalar.
class Scalar {
public:
    Scalar() = default;
    Scalar(Program* prog, int node, ir::Complex value)
        : prog_(prog), node_(node), value_(value) {}

    ir::Complex value() const { return value_; }
    int node() const { return node_; }
    Program* program() const { return prog_; }
    bool bound() const { return prog_ != nullptr; }

private:
    Program* prog_ = nullptr;
    int node_ = -1;
    ir::Complex value_{};
};

/// A traced vector of four complex elements.
class Vector {
public:
    using Elems = std::array<ir::Complex, ir::kVecLen>;

    Vector() = default;
    Vector(Program* prog, int node, Elems value) : prog_(prog), node_(node), value_(value) {}

    const Elems& value() const { return value_; }
    ir::Complex operator[](int i) const;
    int node() const { return node_; }
    Program* program() const { return prog_; }
    bool bound() const { return prog_ != nullptr; }

private:
    Program* prog_ = nullptr;
    int node_ = -1;
    Elems value_{};
};

/// A 4x4 complex matrix: four traced row vectors.
class Matrix {
public:
    Matrix() = default;
    explicit Matrix(std::array<Vector, 4> rows) : rows_(std::move(rows)) {}

    const Vector& row(int i) const;
    /// Row access in the DSL style of listing 1: A(i).
    const Vector& operator()(int i) const { return row(i); }
    const std::array<Vector, 4>& rows() const { return rows_; }

private:
    std::array<Vector, 4> rows_{};
};

}  // namespace revec::dsl
