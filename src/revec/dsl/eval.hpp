// Operation semantics and the reference IR evaluator. The same semantics
// back three things: the DSL's eager evaluation (functional debugging), the
// pass-preservation property tests, and the simulator's output check.
#pragma once

#include <map>
#include <span>
#include <string_view>
#include <vector>

#include "revec/ir/graph.hpp"

namespace revec::dsl {

/// Apply one catalogue operation to its operand values. Most operations
/// return a single value; matrix-producing operations return four row
/// vectors. `imm` carries the immediate (index position, mask bits).
/// Throws revec::Error on arity or kind mismatches.
std::vector<ir::Value> apply_op(std::string_view op, std::span<const ir::Value> args, int imm);

/// Apply a (possibly fused) operation node: the fused pre-processing stage
/// is applied to the designated operand, then the core operation, then the
/// fused post-processing stage to the result.
std::vector<ir::Value> apply_node(const ir::Node& node, std::span<const ir::Value> args);

/// Evaluate the whole graph. Input data nodes take their value from
/// `overrides` when present, otherwise from their embedded input_value;
/// unbound inputs are an error. Returns a value for every *data* node,
/// indexed by node id (operation slots are default-constructed).
std::vector<ir::Value> evaluate(const ir::Graph& g,
                                const std::map<int, ir::Value>& overrides = {});

}  // namespace revec::dsl
