#include "revec/dsl/value.hpp"

#include "revec/support/assert.hpp"

namespace revec::dsl {

ir::Complex Vector::operator[](int i) const {
    REVEC_EXPECTS(i >= 0 && i < ir::kVecLen);
    return value_[static_cast<std::size_t>(i)];
}

const Vector& Matrix::row(int i) const {
    REVEC_EXPECTS(i >= 0 && i < 4);
    return rows_[static_cast<std::size_t>(i)];
}

}  // namespace revec::dsl
