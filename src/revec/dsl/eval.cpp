#include "revec/dsl/eval.hpp"

#include <algorithm>
#include <cmath>

#include "revec/arch/ops.hpp"
#include "revec/ir/analysis.hpp"
#include "revec/support/assert.hpp"

namespace revec::dsl {

namespace {

using ir::Complex;
using ir::kVecLen;
using ir::Value;

[[noreturn]] void semantic_error(std::string_view op, const std::string& what) {
    throw Error("op '" + std::string(op) + "': " + what);
}

const Value& expect_kind(std::string_view op, std::span<const Value> args, std::size_t i,
                         Value::Kind kind) {
    if (i >= args.size()) semantic_error(op, "missing operand " + std::to_string(i));
    if (args[i].kind != kind) {
        semantic_error(op, "operand " + std::to_string(i) + " has the wrong kind");
    }
    return args[i];
}

const Value& vec_arg(std::string_view op, std::span<const Value> args, std::size_t i) {
    return expect_kind(op, args, i, Value::Kind::Vector);
}

const Value& sca_arg(std::string_view op, std::span<const Value> args, std::size_t i) {
    return expect_kind(op, args, i, Value::Kind::Scalar);
}

Value map2(std::string_view op, std::span<const Value> args, auto&& fn) {
    const Value& a = vec_arg(op, args, 0);
    const Value& b = vec_arg(op, args, 1);
    Value out = Value::vector({});
    for (int i = 0; i < kVecLen; ++i) {
        const auto k = static_cast<std::size_t>(i);
        out.elems[k] = fn(a.elems[k], b.elems[k]);
    }
    return out;
}

double squ(Complex c) { return std::norm(c); }

Value sort_by_norm(const Value& v) {
    std::array<Complex, kVecLen> elems = v.elems;
    std::stable_sort(elems.begin(), elems.end(),
                     [](Complex a, Complex b) { return squ(a) < squ(b); });
    return Value::vector(elems);
}

}  // namespace

std::vector<Value> apply_op(std::string_view op, std::span<const Value> args, int imm) {
    const arch::OpInfo& info = arch::op_info(op);
    if (static_cast<int>(args.size()) != info.arity) {
        semantic_error(op, "expected " + std::to_string(info.arity) + " operands, got " +
                               std::to_string(args.size()));
    }

    // -- vector core -----------------------------------------------------------
    if (op == "v_add") return {map2(op, args, [](Complex a, Complex b) { return a + b; })};
    if (op == "v_sub") return {map2(op, args, [](Complex a, Complex b) { return a - b; })};
    if (op == "v_mul") return {map2(op, args, [](Complex a, Complex b) { return a * b; })};
    if (op == "v_cmac") {
        const Value& a = vec_arg(op, args, 0);
        const Value& b = vec_arg(op, args, 1);
        const Value& c = vec_arg(op, args, 2);
        Value out = Value::vector({});
        for (std::size_t i = 0; i < kVecLen; ++i) {
            out.elems[i] = a.elems[i] * b.elems[i] + c.elems[i];
        }
        return {out};
    }
    if (op == "v_scale") {
        const Value& a = vec_arg(op, args, 0);
        const Complex s = sca_arg(op, args, 1).s();
        Value out = Value::vector({});
        for (std::size_t i = 0; i < kVecLen; ++i) out.elems[i] = a.elems[i] * s;
        return {out};
    }
    if (op == "v_axpy") {
        // y - s*x: the Gram-Schmidt column update.
        const Value& y = vec_arg(op, args, 0);
        const Complex s = sca_arg(op, args, 1).s();
        const Value& x = vec_arg(op, args, 2);
        Value out = Value::vector({});
        for (std::size_t i = 0; i < kVecLen; ++i) out.elems[i] = y.elems[i] - s * x.elems[i];
        return {out};
    }
    if (op == "v_dotP" || op == "v_dotu") {
        const Value& a = vec_arg(op, args, 0);
        const Value& b = vec_arg(op, args, 1);
        Complex acc = 0;
        for (std::size_t i = 0; i < kVecLen; ++i) {
            acc += a.elems[i] * (op == "v_dotP" ? std::conj(b.elems[i]) : b.elems[i]);
        }
        return {Value::scalar(acc)};
    }
    if (op == "v_squsum") {
        const Value& a = vec_arg(op, args, 0);
        double acc = 0;
        for (std::size_t i = 0; i < kVecLen; ++i) acc += squ(a.elems[i]);
        return {Value::scalar(acc)};
    }

    // -- vector pre-processing ---------------------------------------------------
    if (op == "pre_conj") {
        const Value& a = vec_arg(op, args, 0);
        Value out = Value::vector({});
        for (std::size_t i = 0; i < kVecLen; ++i) out.elems[i] = std::conj(a.elems[i]);
        return {out};
    }
    if (op == "pre_mask") {
        const Value& a = vec_arg(op, args, 0);
        Value out = Value::vector({});
        for (int i = 0; i < kVecLen; ++i) {
            if ((imm >> i) & 1) out.elems[static_cast<std::size_t>(i)] = a.elems[static_cast<std::size_t>(i)];
        }
        return {out};
    }

    // -- vector post-processing ---------------------------------------------------
    if (op == "post_sort") return {sort_by_norm(vec_arg(op, args, 0))};
    if (op == "post_accum") {
        const Value& a = vec_arg(op, args, 0);
        Complex acc = 0;
        for (std::size_t i = 0; i < kVecLen; ++i) acc += a.elems[i];
        return {Value::scalar(acc)};
    }

    // -- matrix operations ----------------------------------------------------------
    if (op == "m_add" || op == "m_sub") {
        std::vector<Value> rows;
        for (std::size_t i = 0; i < 4; ++i) {
            const Value& a = vec_arg(op, args, i);
            const Value& b = vec_arg(op, args, i + 4);
            Value out = Value::vector({});
            for (std::size_t k = 0; k < kVecLen; ++k) {
                out.elems[k] = op == "m_add" ? a.elems[k] + b.elems[k] : a.elems[k] - b.elems[k];
            }
            rows.push_back(out);
        }
        return rows;
    }
    if (op == "m_scale") {
        const Complex s = sca_arg(op, args, 4).s();
        std::vector<Value> rows;
        for (std::size_t i = 0; i < 4; ++i) {
            const Value& a = vec_arg(op, args, i);
            Value out = Value::vector({});
            for (std::size_t k = 0; k < kVecLen; ++k) out.elems[k] = a.elems[k] * s;
            rows.push_back(out);
        }
        return rows;
    }
    if (op == "m_squsum") {
        Value out = Value::vector({});
        for (std::size_t i = 0; i < 4; ++i) {
            const Value& a = vec_arg(op, args, i);
            double acc = 0;
            for (std::size_t k = 0; k < kVecLen; ++k) acc += squ(a.elems[k]);
            out.elems[i] = acc;
        }
        return {out};
    }
    if (op == "m_vmul") {
        const Value& x = vec_arg(op, args, 4);
        Value out = Value::vector({});
        for (std::size_t i = 0; i < 4; ++i) {
            const Value& row = vec_arg(op, args, i);
            Complex acc = 0;
            for (std::size_t k = 0; k < kVecLen; ++k) acc += row.elems[k] * x.elems[k];
            out.elems[i] = acc;
        }
        return {out};
    }
    if (op == "m_hermitian") {
        std::vector<Value> rows(4, Value::vector({}));
        for (std::size_t i = 0; i < 4; ++i) {
            const Value& row = vec_arg(op, args, i);
            for (std::size_t j = 0; j < 4; ++j) {
                rows[j].elems[i] = std::conj(row.elems[j]);
            }
        }
        return rows;
    }

    // -- scalar accelerator -------------------------------------------------------------
    if (op == "s_add") return {Value::scalar(sca_arg(op, args, 0).s() + sca_arg(op, args, 1).s())};
    if (op == "s_sub") return {Value::scalar(sca_arg(op, args, 0).s() - sca_arg(op, args, 1).s())};
    if (op == "s_mul") return {Value::scalar(sca_arg(op, args, 0).s() * sca_arg(op, args, 1).s())};
    if (op == "s_div") {
        const Complex d = sca_arg(op, args, 1).s();
        if (d == Complex(0, 0)) semantic_error(op, "division by zero");
        return {Value::scalar(sca_arg(op, args, 0).s() / d)};
    }
    if (op == "s_sqrt") return {Value::scalar(std::sqrt(sca_arg(op, args, 0).s()))};
    if (op == "s_rsqrt") {
        const Complex r = std::sqrt(sca_arg(op, args, 0).s());
        if (r == Complex(0, 0)) semantic_error(op, "rsqrt of zero");
        return {Value::scalar(Complex(1, 0) / r)};
    }
    if (op == "s_cordic_mag") return {Value::scalar(std::abs(sca_arg(op, args, 0).s()))};

    // -- index / merge --------------------------------------------------------------------
    if (op == "index") {
        if (imm < 0 || imm >= kVecLen) semantic_error(op, "index immediate out of range");
        return {Value::scalar(vec_arg(op, args, 0).elems[static_cast<std::size_t>(imm)])};
    }
    if (op == "merge") {
        Value out = Value::vector({});
        for (std::size_t i = 0; i < 4; ++i) out.elems[i] = sca_arg(op, args, i).s();
        return {out};
    }

    semantic_error(op, "no semantics registered");
}

std::vector<Value> apply_node(const ir::Node& node, std::span<const Value> args) {
    REVEC_EXPECTS(node.is_op());
    std::vector<Value> operands(args.begin(), args.end());

    if (!node.pre_op.empty()) {
        const arch::OpInfo& pre = arch::op_info(node.pre_op);
        if (pre.is_matrix_op) {
            // Matrix pre-processing (m_hermitian) transforms the leading
            // four row operands in place.
            if (operands.size() < 4) {
                semantic_error(node.pre_op, "matrix pre-stage needs 4 row operands");
            }
            const std::vector<Value> rows =
                apply_op(node.pre_op, std::span<const Value>(operands.data(), 4), node.imm);
            for (std::size_t i = 0; i < 4; ++i) operands[i] = rows[i];
        } else {
            const auto k = static_cast<std::size_t>(node.pre_arg);
            if (k >= operands.size()) semantic_error(node.pre_op, "pre_arg out of range");
            operands[k] =
                apply_op(node.pre_op, std::span<const Value>(&operands[k], 1), node.imm).front();
        }
    }

    std::vector<Value> results =
        apply_op(node.op, std::span<const Value>(operands.data(), operands.size()), node.imm);

    if (!node.post_op.empty()) {
        if (results.size() != 1) {
            semantic_error(node.post_op, "post-stage requires a single core result");
        }
        results = apply_op(node.post_op, std::span<const Value>(results.data(), 1), node.imm);
    }
    return results;
}

std::vector<Value> evaluate(const ir::Graph& g, const std::map<int, Value>& overrides) {
    std::vector<Value> values(static_cast<std::size_t>(g.num_nodes()));
    std::vector<char> have(static_cast<std::size_t>(g.num_nodes()), 0);

    for (const int v : ir::topo_order(g)) {
        const ir::Node& n = g.node(v);
        if (n.is_data()) {
            if (g.preds(v).empty()) {
                if (const auto it = overrides.find(v); it != overrides.end()) {
                    values[static_cast<std::size_t>(v)] = it->second;
                } else if (n.input_value.has_value()) {
                    values[static_cast<std::size_t>(v)] = *n.input_value;
                } else {
                    throw Error("input data node " + std::to_string(v) + " ('" + n.label +
                                "') has no value");
                }
                have[static_cast<std::size_t>(v)] = 1;
            }
            // Produced data nodes are filled in when their producer runs.
            continue;
        }
        std::vector<Value> args;
        args.reserve(g.preds(v).size());
        for (const int p : g.preds(v)) {
            REVEC_ASSERT(have[static_cast<std::size_t>(p)]);
            args.push_back(values[static_cast<std::size_t>(p)]);
        }
        const std::vector<Value> results = apply_node(n, args);
        const auto& outs = g.succs(v);
        if (results.size() != outs.size()) {
            throw Error("op node " + std::to_string(v) + " produced " +
                        std::to_string(results.size()) + " values for " +
                        std::to_string(outs.size()) + " outputs");
        }
        for (std::size_t i = 0; i < outs.size(); ++i) {
            values[static_cast<std::size_t>(outs[i])] = results[i];
            have[static_cast<std::size_t>(outs[i])] = 1;
        }
    }
    return values;
}

}  // namespace revec::dsl
