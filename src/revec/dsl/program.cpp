#include "revec/dsl/program.hpp"

#include "revec/arch/ops.hpp"
#include "revec/support/assert.hpp"

namespace revec::dsl {

Scalar Program::in_scalar(ir::Complex v, std::string label) {
    const int id = graph_.add_data(ir::NodeCat::ScalarData, std::move(label));
    graph_.node(id).input_value = ir::Value::scalar(v);
    return Scalar(this, id, v);
}

Vector Program::in_vector(Vector::Elems v, std::string label) {
    const int id = graph_.add_data(ir::NodeCat::VectorData, std::move(label));
    graph_.node(id).input_value = ir::Value::vector(v);
    return Vector(this, id, v);
}

Vector Program::in_vector(double a, double b, double c, double d, std::string label) {
    return in_vector(Vector::Elems{ir::Complex(a, 0), ir::Complex(b, 0), ir::Complex(c, 0),
                                   ir::Complex(d, 0)},
                     std::move(label));
}

Matrix Program::in_matrix(std::array<Vector, 4> rows) {
    for (const Vector& r : rows) check_owns(r);
    return Matrix(std::move(rows));
}

Matrix Program::in_matrix(std::array<Vector::Elems, 4> rows, std::string label) {
    std::array<Vector, 4> vs;
    for (int i = 0; i < 4; ++i) {
        vs[static_cast<std::size_t>(i)] =
            in_vector(rows[static_cast<std::size_t>(i)],
                      label.empty() ? std::string{} : label + "[" + std::to_string(i) + "]");
    }
    return Matrix(std::move(vs));
}

void Program::mark_output(const Scalar& s) {
    check_owns(s);
    graph_.node(s.node()).is_output = true;
}

void Program::mark_output(const Vector& v) {
    check_owns(v);
    graph_.node(v.node()).is_output = true;
}

void Program::mark_output(const Matrix& m) {
    for (const Vector& r : m.rows()) mark_output(r);
}

int Program::trace(ir::NodeCat op_cat, const std::string& op, const std::vector<int>& args,
                   ir::NodeCat result_cat, int imm, const std::string& label) {
    REVEC_EXPECTS(arch::is_known_op(op));
    const int op_id = graph_.add_op(op_cat, op, label);
    graph_.node(op_id).imm = imm;
    for (const int a : args) graph_.add_edge(a, op_id);
    const int out_id = graph_.add_data(result_cat, label.empty() ? "" : label + ".out");
    graph_.add_edge(op_id, out_id);
    return out_id;
}

std::array<int, 4> Program::trace_matrix_result(const std::string& op,
                                                const std::vector<int>& args,
                                                const std::string& label) {
    REVEC_EXPECTS(arch::is_known_op(op));
    const int op_id = graph_.add_op(ir::NodeCat::MatrixOp, op, label);
    for (const int a : args) graph_.add_edge(a, op_id);
    std::array<int, 4> outs{};
    for (int i = 0; i < 4; ++i) {
        const int out_id = graph_.add_data(
            ir::NodeCat::VectorData,
            label.empty() ? "" : label + ".r" + std::to_string(i));
        graph_.add_edge(op_id, out_id);
        outs[static_cast<std::size_t>(i)] = out_id;
    }
    return outs;
}

void Program::check_owns(const Scalar& s) const {
    if (s.program() != this) throw Error("scalar value does not belong to this Program");
}

void Program::check_owns(const Vector& v) const {
    if (v.program() != this) throw Error("vector value does not belong to this Program");
}

}  // namespace revec::dsl
