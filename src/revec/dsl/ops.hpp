// The DSL operation library (paper §3.1). Each function computes its result
// eagerly (functional debugging) and traces an operation node plus result
// data node(s) into the owning Program's IR. Operand order in the IR matches
// parameter order.
#pragma once

#include "revec/dsl/program.hpp"
#include "revec/dsl/value.hpp"

namespace revec::dsl {

// -- vector core --------------------------------------------------------------
Vector v_add(const Vector& a, const Vector& b);
Vector v_sub(const Vector& a, const Vector& b);
Vector v_mul(const Vector& a, const Vector& b);              // element-wise
Vector v_cmac(const Vector& a, const Vector& b, const Vector& c);  // a*b + c
Vector v_scale(const Vector& a, const Scalar& s);
Vector v_axpy(const Vector& y, const Scalar& s, const Vector& x);  // y - s*x
Scalar v_dotP(const Vector& a, const Vector& b);  // sum a_i * conj(b_i)
Scalar v_dotu(const Vector& a, const Vector& b);  // sum a_i * b_i
Scalar v_squsum(const Vector& a);                 // sum |a_i|^2

// -- vector pre-/post-processing (standalone; the merging pass may fuse them) --
Vector pre_conj(const Vector& a);
Vector pre_mask(const Vector& a, int mask_bits);  // keep element i iff bit i set
Vector post_sort(const Vector& a);                // ascending by |x|^2
Scalar post_accum(const Vector& a);               // horizontal sum

// -- matrix operations -----------------------------------------------------------
Matrix m_add(const Matrix& a, const Matrix& b);
Matrix m_sub(const Matrix& a, const Matrix& b);
Matrix m_scale(const Matrix& a, const Scalar& s);
Vector m_squsum(const Matrix& a);                // per-row sum |.|^2
Vector m_vmul(const Matrix& a, const Vector& x); // per-row unconjugated dot
Matrix m_hermitian(const Matrix& a);             // conjugate transpose

// -- scalar accelerator -------------------------------------------------------------
Scalar s_add(const Scalar& a, const Scalar& b);
Scalar s_sub(const Scalar& a, const Scalar& b);
Scalar s_mul(const Scalar& a, const Scalar& b);
Scalar s_div(const Scalar& a, const Scalar& b);
Scalar s_sqrt(const Scalar& a);
Scalar s_rsqrt(const Scalar& a);
Scalar s_cordic_mag(const Scalar& a);

// -- index / merge ---------------------------------------------------------------------
Scalar index(const Vector& v, int position);
Vector merge(const Scalar& a, const Scalar& b, const Scalar& c, const Scalar& d);

}  // namespace revec::dsl
