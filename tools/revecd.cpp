// revecd — the scheduling service daemon (DESIGN §5i). Listens on a
// unix-domain socket for newline-delimited JSON solve requests (the
// KernelModel shape revecc --dump-model writes), serves exact repeats from
// a content-addressed schedule cache, multiplexes misses over a bounded
// shared solver pool, and answers every admitted request with a verified
// schedule — shedding to the heuristic anytime answer when the deadline or
// the queue cannot fit a full solve. SIGTERM/SIGINT (or a protocol
// shutdown request, see revecctl) drains and exits cleanly, optionally
// saving the service trace and metrics.
#include <csignal>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "revec/obs/metrics.hpp"
#include "revec/obs/trace.hpp"
#include "revec/support/strings.hpp"
#include "revec/svc/flags.hpp"
#include "revec/svc/server.hpp"
#include "revec/svc/service.hpp"

namespace {

revec::svc::Server* g_server = nullptr;

extern "C" void handle_signal(int) {
    if (g_server != nullptr) g_server->request_stop_from_signal();
}

void usage(std::ostream& os) { revec::svc::revecd_usage(os); }

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    std::string trace_path;
    std::string metrics_path;
    revec::obs::TraceLevel trace_level = revec::obs::TraceLevel::Phase;
    revec::svc::Service::Config config;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            } else if (revec::starts_with(arg, "--socket=")) {
                socket_path = arg.substr(9);
            } else if (revec::starts_with(arg, "--workers=")) {
                config.pool_workers = static_cast<int>(revec::parse_int(arg.substr(10)));
            } else if (revec::starts_with(arg, "--max-queue=")) {
                config.max_queue = static_cast<int>(revec::parse_int(arg.substr(12)));
            } else if (revec::starts_with(arg, "--cache-capacity=")) {
                config.cache_capacity =
                    static_cast<std::size_t>(revec::parse_int(arg.substr(17)));
            } else if (revec::starts_with(arg, "--cache-near-capacity=")) {
                config.cache_near_capacity =
                    static_cast<std::size_t>(revec::parse_int(arg.substr(22)));
            } else if (revec::starts_with(arg, "--trace=")) {
                trace_path = arg.substr(8);
            } else if (revec::starts_with(arg, "--trace-level=")) {
                const auto parsed = revec::obs::parse_trace_level(arg.substr(14));
                if (!parsed.has_value()) {
                    std::cerr << "revecd: bad --trace-level (off|phase|node)\n";
                    return 1;
                }
                trace_level = *parsed;
            } else if (revec::starts_with(arg, "--metrics=")) {
                metrics_path = arg.substr(10);
            } else {
                std::cerr << "revecd: unknown flag '" << arg << "'\n";
                usage(std::cerr);
                return 1;
            }
        }
        if (socket_path.empty()) {
            std::cerr << "revecd: --socket=PATH is required\n";
            usage(std::cerr);
            return 1;
        }
        if (config.pool_workers < 1 || config.max_queue < 0) {
            std::cerr << "revecd: --workers must be >= 1, --max-queue >= 0\n";
            return 1;
        }

        std::unique_ptr<revec::obs::TraceSink> sink;
        if (!trace_path.empty() && trace_level != revec::obs::TraceLevel::Off) {
            sink = std::make_unique<revec::obs::TraceSink>(trace_level);
        }
        config.trace = sink.get();

        revec::svc::Service service(config);
        revec::svc::Server server(socket_path, service, sink.get());
        g_server = &server;
        std::signal(SIGTERM, handle_signal);
        std::signal(SIGINT, handle_signal);

        std::cerr << "revecd: listening on " << socket_path << " ("
                  << config.pool_workers << " workers, queue " << config.max_queue
                  << ", cache " << config.cache_capacity << "+"
                  << config.cache_near_capacity << " near)\n";
        server.run();
        g_server = nullptr;

        if (!metrics_path.empty()) {
            // metrics_json() refreshes the live queue/cache gauges.
            std::ofstream out(metrics_path);
            out << service.metrics_json() << '\n';
            if (!out) {
                std::cerr << "revecd: cannot write " << metrics_path << "\n";
                return 1;
            }
        }
        if (sink != nullptr) sink->save(trace_path);
        std::cerr << "revecd: shut down cleanly\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "revecd: " << e.what() << '\n';
        return 1;
    }
}
