// revecd — the scheduling service daemon (DESIGN §5i). Listens on a
// unix-domain socket for newline-delimited JSON solve requests (the
// KernelModel shape revecc --dump-model writes), serves exact repeats from
// a content-addressed schedule cache, multiplexes misses over a bounded
// shared solver pool, and answers every admitted request with a verified
// schedule — shedding to the heuristic anytime answer when the deadline or
// the queue cannot fit a full solve. SIGTERM/SIGINT (or a protocol
// shutdown request, see revecctl) drains and exits cleanly, optionally
// saving the service trace and metrics; --metrics-interval-s additionally
// snapshots both files periodically (tmp + atomic rename) so a live daemon
// can be watched without being asked to stop. --flight-dir arms the
// per-request flight recorder (DESIGN §5l): interesting requests dump
// their phase ring even when tracing is off.
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "revec/obs/metrics.hpp"
#include "revec/obs/trace.hpp"
#include "revec/support/strings.hpp"
#include "revec/svc/flags.hpp"
#include "revec/svc/server.hpp"
#include "revec/svc/service.hpp"

namespace {

revec::svc::Server* g_server = nullptr;

extern "C" void handle_signal(int) {
    if (g_server != nullptr) g_server->request_stop_from_signal();
}

void usage(std::ostream& os) { revec::svc::revecd_usage(os); }

/// Write `content` to `path` via a sibling tmp file and an atomic rename,
/// so watchers never read a half-written snapshot. Best-effort: a failed
/// snapshot is reported but never stops the daemon.
void snapshot_file(const std::string& path, const std::string& content) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        out << content;
        if (!out) {
            std::cerr << "revecd: snapshot write to " << tmp << " failed\n";
            std::remove(tmp.c_str());
            return;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::cerr << "revecd: snapshot rename to " << path << " failed: "
                  << ec.message() << "\n";
        std::remove(tmp.c_str());
    }
}

/// The periodic snapshot loop: every interval, dump the live metrics JSON
/// (and the trace, when one is being recorded) with atomic renames. Runs
/// on its own thread; the condition variable lets shutdown interrupt a
/// sleep immediately.
class SnapshotLoop {
public:
    SnapshotLoop(revec::svc::Service& service, revec::obs::TraceSink* sink,
                 std::string metrics_path, std::string trace_path,
                 std::int64_t interval_s)
        : service_(service),
          sink_(sink),
          metrics_path_(std::move(metrics_path)),
          trace_path_(std::move(trace_path)) {
        thread_ = std::thread([this, interval_s] {
            std::unique_lock<std::mutex> lock(mu_);
            while (!cv_.wait_for(lock, std::chrono::seconds(interval_s),
                                 [this] { return stop_; })) {
                lock.unlock();
                snap();
                lock.lock();
            }
        });
    }

    ~SnapshotLoop() {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

private:
    void snap() {
        if (!metrics_path_.empty()) {
            snapshot_file(metrics_path_, service_.metrics_json() + "\n");
        }
        if (sink_ != nullptr && !trace_path_.empty()) {
            // The sink serializes from per-track snapshots, so this is safe
            // while session and worker threads are still writing events.
            // Same format rule as TraceSink::save: .jsonl = JSONL stream.
            std::ostringstream os;
            if (revec::ends_with(trace_path_, ".jsonl")) {
                sink_->write_jsonl(os);
            } else {
                sink_->write_chrome_trace(os);
            }
            snapshot_file(trace_path_, os.str());
        }
    }

    revec::svc::Service& service_;
    revec::obs::TraceSink* sink_;
    std::string metrics_path_;
    std::string trace_path_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    std::string trace_path;
    std::string metrics_path;
    std::int64_t metrics_interval_s = 0;
    revec::obs::TraceLevel trace_level = revec::obs::TraceLevel::Phase;
    revec::svc::Service::Config config;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            } else if (revec::starts_with(arg, "--socket=")) {
                socket_path = arg.substr(9);
            } else if (revec::starts_with(arg, "--workers=")) {
                config.pool_workers = static_cast<int>(revec::parse_int(arg.substr(10)));
            } else if (revec::starts_with(arg, "--max-queue=")) {
                config.max_queue = static_cast<int>(revec::parse_int(arg.substr(12)));
            } else if (revec::starts_with(arg, "--cache-capacity=")) {
                config.cache_capacity =
                    static_cast<std::size_t>(revec::parse_int(arg.substr(17)));
            } else if (revec::starts_with(arg, "--cache-near-capacity=")) {
                config.cache_near_capacity =
                    static_cast<std::size_t>(revec::parse_int(arg.substr(22)));
            } else if (revec::starts_with(arg, "--trace=")) {
                trace_path = arg.substr(8);
            } else if (revec::starts_with(arg, "--trace-level=")) {
                const auto parsed = revec::obs::parse_trace_level(arg.substr(14));
                if (!parsed.has_value()) {
                    std::cerr << "revecd: bad --trace-level (off|phase|node)\n";
                    return 1;
                }
                trace_level = *parsed;
            } else if (revec::starts_with(arg, "--metrics=")) {
                metrics_path = arg.substr(10);
            } else if (revec::starts_with(arg, "--metrics-interval-s=")) {
                metrics_interval_s = revec::parse_int(arg.substr(21));
            } else if (revec::starts_with(arg, "--flight-dir=")) {
                config.flight.dir = arg.substr(13);
            } else if (revec::starts_with(arg, "--flight-keep=")) {
                config.flight.keep = static_cast<int>(revec::parse_int(arg.substr(14)));
            } else if (revec::starts_with(arg, "--slo-ms=")) {
                config.flight.slo_ms = revec::parse_int(arg.substr(9));
            } else {
                std::cerr << "revecd: unknown flag '" << arg << "'\n";
                usage(std::cerr);
                return 1;
            }
        }
        if (socket_path.empty()) {
            std::cerr << "revecd: --socket=PATH is required\n";
            usage(std::cerr);
            return 1;
        }
        if (config.pool_workers < 1 || config.max_queue < 0) {
            std::cerr << "revecd: --workers must be >= 1, --max-queue >= 0\n";
            return 1;
        }
        if (config.flight.keep < 1) {
            std::cerr << "revecd: --flight-keep must be >= 1\n";
            return 1;
        }
        if (metrics_interval_s < 0) {
            std::cerr << "revecd: --metrics-interval-s must be >= 0\n";
            return 1;
        }
        if (metrics_interval_s > 0 && metrics_path.empty() && trace_path.empty()) {
            std::cerr << "revecd: --metrics-interval-s needs --metrics or --trace\n";
            return 1;
        }

        std::unique_ptr<revec::obs::TraceSink> sink;
        if (!trace_path.empty() && trace_level != revec::obs::TraceLevel::Off) {
            sink = std::make_unique<revec::obs::TraceSink>(trace_level);
        }
        config.trace = sink.get();

        revec::svc::Service service(config);
        revec::svc::Server server(socket_path, service, sink.get());
        g_server = &server;
        std::signal(SIGTERM, handle_signal);
        std::signal(SIGINT, handle_signal);

        std::cerr << "revecd: listening on " << socket_path << " ("
                  << config.pool_workers << " workers, queue " << config.max_queue
                  << ", cache " << config.cache_capacity << "+"
                  << config.cache_near_capacity << " near)\n";
        if (!config.flight.dir.empty()) {
            std::cerr << "revecd: flight recorder on (" << config.flight.dir
                      << ", keep " << config.flight.keep << ", slo "
                      << config.flight.slo_ms << " ms)\n";
        }
        {
            std::unique_ptr<SnapshotLoop> snapshots;
            if (metrics_interval_s > 0) {
                snapshots = std::make_unique<SnapshotLoop>(
                    service, sink.get(), metrics_path, trace_path, metrics_interval_s);
            }
            server.run();
        }
        g_server = nullptr;

        if (!metrics_path.empty()) {
            // metrics_json() refreshes the live queue/cache gauges.
            std::ofstream out(metrics_path);
            out << service.metrics_json() << '\n';
            if (!out) {
                std::cerr << "revecd: cannot write " << metrics_path << "\n";
                return 1;
            }
        }
        if (sink != nullptr) sink->save(trace_path);
        std::cerr << "revecd: shut down cleanly\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "revecd: " << e.what() << '\n';
        return 1;
    }
}
