// revecctl — command-line client for a running revecd. Sends solve
// requests built from revecc --dump-model files, liveness pings, stats
// dumps of the daemon's metrics registry, and the drain-and-exit shutdown
// request. Responses are printed verbatim, one JSON line each, so shell
// pipelines (the CI daemon-smoke step greps them) see exactly what went
// over the wire.
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "revec/model/json.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/strings.hpp"
#include "revec/svc/client.hpp"
#include "revec/svc/flags.hpp"
#include "revec/svc/protocol.hpp"

namespace {

void usage(std::ostream& os) { revec::svc::revecctl_usage(os); }

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw revec::Error("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    std::string command;
    std::vector<std::string> models;
    revec::svc::SolveParams params;
    std::int64_t deadline_ms = -1;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            } else if (revec::starts_with(arg, "--socket=")) {
                socket_path = arg.substr(9);
            } else if (revec::starts_with(arg, "--deadline-ms=")) {
                deadline_ms = revec::parse_int(arg.substr(14));
            } else if (revec::starts_with(arg, "--threads=")) {
                params.threads = static_cast<int>(revec::parse_int(arg.substr(10)));
            } else if (revec::starts_with(arg, "--lns-workers=")) {
                params.lns_workers = static_cast<int>(revec::parse_int(arg.substr(14)));
            } else if (revec::starts_with(arg, "--lns-relax-pct=")) {
                params.lns_relax_pct =
                    static_cast<int>(revec::parse_int(arg.substr(16)));
            } else if (revec::starts_with(arg, "--seed=")) {
                params.seed =
                    static_cast<std::uint32_t>(revec::parse_int(arg.substr(7)));
            } else if (arg == "--no-warm-start") {
                params.warm_start = false;
            } else if (arg == "--heuristic-only") {
                params.heuristic_only = true;
            } else if (revec::starts_with(arg, "--reuse=")) {
                const auto mode = revec::svc::reuse_from_name(arg.substr(8));
                if (!mode.has_value()) {
                    std::cerr << "revecctl: bad --reuse (off|exact|near)\n";
                    return 1;
                }
                params.reuse = *mode;
            } else if (revec::starts_with(arg, "--")) {
                std::cerr << "revecctl: unknown flag '" << arg << "'\n";
                usage(std::cerr);
                return 1;
            } else if (command.empty()) {
                command = arg;
            } else if (command == "solve") {
                models.push_back(arg);
            } else {
                std::cerr << "revecctl: unexpected argument '" << arg << "'\n";
                return 1;
            }
        }
        if (socket_path.empty() || command.empty()) {
            std::cerr << "revecctl: --socket=PATH and a command are required\n";
            usage(std::cerr);
            return 1;
        }

        revec::svc::Client client(socket_path);
        std::vector<revec::svc::Request> requests;
        std::int64_t next_id = 1;

        if (command == "ping" || command == "stats" || command == "shutdown") {
            revec::svc::Request req;
            req.kind = command == "ping"    ? revec::svc::RequestKind::Ping
                       : command == "stats" ? revec::svc::RequestKind::Stats
                                            : revec::svc::RequestKind::Shutdown;
            req.id = next_id++;
            requests.push_back(std::move(req));
        } else if (command == "solve") {
            if (models.empty()) {
                std::cerr << "revecctl: solve needs at least one MODEL.json\n";
                return 1;
            }
            for (const std::string& path : models) {
                revec::svc::Request req;
                req.kind = revec::svc::RequestKind::Solve;
                req.id = next_id++;
                req.deadline_ms = deadline_ms;
                req.params = params;
                req.model = revec::model::from_json(read_file(path));
                requests.push_back(std::move(req));
            }
        } else {
            std::cerr << "revecctl: unknown command '" << command << "'\n";
            usage(std::cerr);
            return 1;
        }

        bool all_ok = true;
        for (const revec::svc::Request& req : requests) {
            const std::string line =
                client.roundtrip_line(revec::svc::serialize_request(req));
            std::cout << line << '\n';
            const revec::svc::Response resp = revec::svc::parse_response(line);
            all_ok = all_ok && resp.ok;
        }
        return all_ok ? 0 : 2;
    } catch (const std::exception& e) {
        std::cerr << "revecctl: " << e.what() << '\n';
        return 1;
    }
}
