// revecctl — command-line client for a running revecd. Sends solve
// requests built from revecc --dump-model files, liveness pings, stats
// dumps of the daemon's metrics registry, and the drain-and-exit shutdown
// request. Responses are printed verbatim, one JSON line each, so shell
// pipelines (the CI daemon-smoke step greps them) see exactly what went
// over the wire. Every solve request carries a correlation rid (random by
// default, pinned with --rid) that the daemon stamps on every span emitted
// on the request's behalf. `top` renders the daemon's live telemetry —
// queue depth, cache hit rates, per-phase latency quantiles — one-shot or
// as a --watch delta view.
#include <array>
#include <chrono>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "revec/model/json.hpp"
#include "revec/obs/metrics.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/json.hpp"
#include "revec/support/strings.hpp"
#include "revec/support/table.hpp"
#include "revec/svc/client.hpp"
#include "revec/svc/flags.hpp"
#include "revec/svc/protocol.hpp"

namespace {

void usage(std::ostream& os) { revec::svc::revecctl_usage(os); }

std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw revec::Error("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Random nonzero rid. Masked to 63 bits so the hex form round-trips
/// through the int64 span payloads without sign surprises.
std::uint64_t random_rid() {
    static std::mt19937_64 rng{std::random_device{}()};
    std::uint64_t rid = 0;
    while (rid == 0) rid = rng() & 0x7fffffffffffffffull;
    return rid;
}

std::uint64_t parse_rid(const std::string& hex) {
    std::uint64_t rid = 0;
    if (hex.empty() || hex.size() > 16) throw revec::Error("--rid must be 1..16 hex digits");
    for (const char c : hex) {
        rid <<= 4;
        if (c >= '0' && c <= '9') {
            rid |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            rid |= static_cast<std::uint64_t>(10 + c - 'a');
        } else {
            throw revec::Error("--rid must be lowercase hex");
        }
    }
    return rid & 0x7fffffffffffffffull;
}

// -- top: live telemetry rendering -------------------------------------------

/// The slice of a stats response `top` renders.
struct StatsSnapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::pair<std::int64_t, std::vector<std::int64_t>>>
        hists;  ///< name -> (count, buckets)
};

StatsSnapshot parse_stats(const std::string& metrics_json) {
    const revec::json::Value doc = revec::json::parse(metrics_json);
    StatsSnapshot s;
    if (const revec::json::Value* counters = doc.find("counters");
        counters != nullptr && counters->is(revec::json::Value::Type::Object)) {
        for (const auto& [name, v] : counters->object) {
            s.counters[name] = static_cast<std::int64_t>(v.number);
        }
    }
    if (const revec::json::Value* gauges = doc.find("gauges");
        gauges != nullptr && gauges->is(revec::json::Value::Type::Object)) {
        for (const auto& [name, v] : gauges->object) s.gauges[name] = v.number;
    }
    if (const revec::json::Value* hists = doc.find("histograms");
        hists != nullptr && hists->is(revec::json::Value::Type::Object)) {
        for (const auto& [name, h] : hists->object) {
            std::pair<std::int64_t, std::vector<std::int64_t>> entry;
            if (const revec::json::Value* count = h.find("count"); count != nullptr) {
                entry.first = static_cast<std::int64_t>(count->number);
            }
            if (const revec::json::Value* buckets = h.find("buckets");
                buckets != nullptr && buckets->is(revec::json::Value::Type::Array)) {
                for (const revec::json::Value& b : buckets->array) {
                    entry.second.push_back(static_cast<std::int64_t>(b.number));
                }
            }
            s.hists[name] = std::move(entry);
        }
    }
    return s;
}

/// Subtract `prev` from `cur` counter- and bucket-wise (gauges stay
/// absolute — they are instantaneous readings, not accumulations).
StatsSnapshot stats_delta(const StatsSnapshot& cur, const StatsSnapshot& prev) {
    StatsSnapshot d = cur;
    for (auto& [name, v] : d.counters) {
        const auto it = prev.counters.find(name);
        if (it != prev.counters.end()) v -= it->second;
    }
    for (auto& [name, h] : d.hists) {
        const auto it = prev.hists.find(name);
        if (it == prev.hists.end()) continue;
        h.first -= it->second.first;
        for (std::size_t k = 0; k < h.second.size() && k < it->second.second.size();
             ++k) {
            h.second[k] -= it->second.second[k];
        }
    }
    return d;
}

std::int64_t counter_of(const StatsSnapshot& s, const std::string& name) {
    const auto it = s.counters.find(name);
    return it != s.counters.end() ? it->second : 0;
}

std::string pct(std::int64_t part, std::int64_t total) {
    if (total <= 0) return "-";
    return revec::format_fixed(100.0 * static_cast<double>(part) /
                                   static_cast<double>(total),
                               1) +
           "%";
}

void render_top(const StatsSnapshot& s, bool delta, std::ostream& out) {
    const auto gauge = [&](const char* name) {
        const auto it = s.gauges.find(name);
        return static_cast<std::int64_t>(it != s.gauges.end() ? it->second : 0.0);
    };
    out << (delta ? "delta since last refresh" : "totals since daemon start")
        << " — queue depth " << gauge("svc.queue.depth") << ", cache "
        << gauge("svc.cache.size") << " exact + " << gauge("svc.cache.near_size")
        << " near, pool completed " << counter_of(s, "svc.pool.completed") << "\n";

    const std::int64_t reqs = counter_of(s, "svc.req.count");
    const std::int64_t shed = counter_of(s, "svc.queue.shed");
    const std::int64_t hit = counter_of(s, "svc.cache.hit");
    const std::int64_t near = counter_of(s, "svc.cache.near_hit");
    const std::int64_t miss = counter_of(s, "svc.cache.miss");
    const std::int64_t vfail = counter_of(s, "svc.cache.verify_fail");
    out << "requests " << reqs << ", shed " << shed << " (" << pct(shed, reqs)
        << "), errors " << counter_of(s, "svc.req.errors") << "\n";
    out << "cache: hit " << hit << " (" << pct(hit, reqs) << "), near " << near << " ("
        << pct(near, reqs) << "), miss " << miss << ", verify-fail " << vfail << "\n";
    out << "flight: recorded " << counter_of(s, "svc.flight.recorded") << ", dumped "
        << counter_of(s, "svc.flight.dump") << ", dropped "
        << counter_of(s, "svc.flight.drop") << "\n\n";

    static const std::array<std::pair<const char*, const char*>, 5> kPhases = {{
        {"lookup", "svc.phase.lookup_ms"},
        {"adapt", "svc.phase.adapt_ms"},
        {"queue wait", "svc.phase.queue_wait_ms"},
        {"solve", "svc.phase.solve_ms"},
        {"request total", "svc.req.latency_ms"},
    }};
    revec::Table table({"phase", "count", "p50 ms", "p95 ms", "p99 ms"});
    for (const auto& [label, metric] : kPhases) {
        const auto it = s.hists.find(metric);
        if (it == s.hists.end() || it->second.first <= 0) continue;
        const auto& [count, buckets] = it->second;
        table.add_row(
            {label, std::to_string(count),
             revec::format_fixed(revec::obs::histogram_quantile(buckets, 0.50), 2),
             revec::format_fixed(revec::obs::histogram_quantile(buckets, 0.95), 2),
             revec::format_fixed(revec::obs::histogram_quantile(buckets, 0.99), 2)});
    }
    if (table.rows() > 0) {
        table.print(out);
    } else {
        out << "(no phase latency samples yet)\n";
    }
}

int run_top(revec::svc::Client& client, int watch, std::int64_t interval_ms) {
    StatsSnapshot prev;
    bool have_prev = false;
    const int refreshes = watch > 0 ? watch : 1;
    for (int i = 0; i < refreshes; ++i) {
        if (i > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
        }
        revec::svc::Request req;
        req.kind = revec::svc::RequestKind::Stats;
        req.id = i + 1;
        const revec::svc::Response resp = revec::svc::parse_response(
            client.roundtrip_line(revec::svc::serialize_request(req)));
        if (!resp.ok) {
            std::cerr << "revecctl: stats request failed: " << resp.error << "\n";
            return 2;
        }
        const StatsSnapshot cur = parse_stats(resp.metrics_json);
        if (watch > 0 && i > 0) std::cout << "\n";
        // The first --watch refresh shows absolute totals (there is no
        // previous sample to diff against); later ones show deltas.
        if (have_prev) {
            render_top(stats_delta(cur, prev), /*delta=*/true, std::cout);
        } else {
            render_top(cur, /*delta=*/false, std::cout);
        }
        prev = cur;
        have_prev = watch > 0;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path;
    std::string command;
    std::vector<std::string> models;
    revec::svc::SolveParams params;
    std::int64_t deadline_ms = -1;
    std::uint64_t rid_base = 0;  // 0 = fresh random rid per request
    int watch = 0;
    std::int64_t interval_ms = 1000;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(std::cout);
                return 0;
            } else if (revec::starts_with(arg, "--socket=")) {
                socket_path = arg.substr(9);
            } else if (revec::starts_with(arg, "--deadline-ms=")) {
                deadline_ms = revec::parse_int(arg.substr(14));
            } else if (revec::starts_with(arg, "--threads=")) {
                params.threads = static_cast<int>(revec::parse_int(arg.substr(10)));
            } else if (revec::starts_with(arg, "--lns-workers=")) {
                params.lns_workers = static_cast<int>(revec::parse_int(arg.substr(14)));
            } else if (revec::starts_with(arg, "--lns-relax-pct=")) {
                params.lns_relax_pct =
                    static_cast<int>(revec::parse_int(arg.substr(16)));
            } else if (revec::starts_with(arg, "--seed=")) {
                params.seed =
                    static_cast<std::uint32_t>(revec::parse_int(arg.substr(7)));
            } else if (arg == "--no-warm-start") {
                params.warm_start = false;
            } else if (arg == "--heuristic-only") {
                params.heuristic_only = true;
            } else if (revec::starts_with(arg, "--reuse=")) {
                const auto mode = revec::svc::reuse_from_name(arg.substr(8));
                if (!mode.has_value()) {
                    std::cerr << "revecctl: bad --reuse (off|exact|near)\n";
                    return 1;
                }
                params.reuse = *mode;
            } else if (revec::starts_with(arg, "--rid=")) {
                rid_base = parse_rid(arg.substr(6));
            } else if (revec::starts_with(arg, "--watch=")) {
                watch = static_cast<int>(revec::parse_int(arg.substr(8)));
            } else if (revec::starts_with(arg, "--interval-ms=")) {
                interval_ms = revec::parse_int(arg.substr(14));
            } else if (revec::starts_with(arg, "--")) {
                std::cerr << "revecctl: unknown flag '" << arg << "'\n";
                usage(std::cerr);
                return 1;
            } else if (command.empty()) {
                command = arg;
            } else if (command == "solve") {
                models.push_back(arg);
            } else {
                std::cerr << "revecctl: unexpected argument '" << arg << "'\n";
                return 1;
            }
        }
        if (socket_path.empty() || command.empty()) {
            std::cerr << "revecctl: --socket=PATH and a command are required\n";
            usage(std::cerr);
            return 1;
        }

        if (watch < 0 || interval_ms < 0) {
            std::cerr << "revecctl: --watch and --interval-ms must be >= 0\n";
            return 1;
        }

        revec::svc::Client client(socket_path);
        if (command == "top") return run_top(client, watch, interval_ms);

        std::vector<revec::svc::Request> requests;
        std::int64_t next_id = 1;

        if (command == "ping" || command == "stats" || command == "shutdown") {
            revec::svc::Request req;
            req.kind = command == "ping"    ? revec::svc::RequestKind::Ping
                       : command == "stats" ? revec::svc::RequestKind::Stats
                                            : revec::svc::RequestKind::Shutdown;
            req.id = next_id++;
            requests.push_back(std::move(req));
        } else if (command == "solve") {
            if (models.empty()) {
                std::cerr << "revecctl: solve needs at least one MODEL.json\n";
                return 1;
            }
            for (const std::string& path : models) {
                revec::svc::Request req;
                req.kind = revec::svc::RequestKind::Solve;
                req.id = next_id++;
                // Client-assigned correlation rid: --rid pins the base (a
                // batch counts up from it, so dumps stay distinguishable),
                // otherwise each request draws a fresh random one.
                req.rid = rid_base != 0
                              ? ((rid_base + static_cast<std::uint64_t>(req.id) - 1) &
                                 0x7fffffffffffffffull)
                              : random_rid();
                req.deadline_ms = deadline_ms;
                req.params = params;
                req.model = revec::model::from_json(read_file(path));
                requests.push_back(std::move(req));
            }
        } else {
            std::cerr << "revecctl: unknown command '" << command << "'\n";
            usage(std::cerr);
            return 1;
        }

        bool all_ok = true;
        for (const revec::svc::Request& req : requests) {
            const std::string line =
                client.roundtrip_line(revec::svc::serialize_request(req));
            std::cout << line << '\n';
            const revec::svc::Response resp = revec::svc::parse_response(line);
            all_ok = all_ok && resp.ok;
        }
        return all_ok ? 0 : 2;
    } catch (const std::exception& e) {
        std::cerr << "revecctl: " << e.what() << '\n';
        return 1;
    }
}
