// revecc — the toolchain driver (paper Fig. 2): IR XML in, schedule /
// machine listing / statistics / modulo kernel out.
#include <exception>
#include <iostream>
#include <vector>

#include "revec/driver/driver.hpp"

int main(int argc, char** argv) {
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        const auto options = revec::driver::parse_args(args, std::cout);
        if (!options.has_value()) return 0;  // --help
        return revec::driver::run(*options, std::cout);
    } catch (const std::exception& e) {
        std::cerr << "revecc: " << e.what() << '\n';
        return 2;
    }
}
