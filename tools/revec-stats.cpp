// revec-stats — offline reader for the traces revecc emits (--trace=F).
// Validates the trace schema (span nesting, timestamp monotonicity) and
// prints a phase/search-tree breakdown: where the solve spent its time,
// how many nodes/failures each worker track contributed, and which point
// events (solutions, bound broadcasts, restarts) fired. CI runs it over
// the bench-smoke trace as a regression gate on the trace format.
#include <cstdint>
#include <exception>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "revec/obs/trace_read.hpp"
#include "revec/support/strings.hpp"
#include "revec/support/table.hpp"

namespace {

struct SpanAgg {
    std::int64_t count = 0;
    std::int64_t total_us = 0;
};

std::string ms(std::int64_t us) { return revec::format_fixed(us / 1000.0, 2); }

int run(const std::string& path, bool validate_only, std::ostream& out) {
    const revec::obs::ParsedTrace trace = revec::obs::load_trace(path);
    const std::vector<std::string> problems = revec::obs::validate_trace(trace);
    if (!problems.empty()) {
        for (const std::string& p : problems) std::cerr << "revec-stats: " << p << "\n";
        return 2;
    }
    if (validate_only) {
        out << path << ": ok (" << trace.tracks.size() << " tracks, "
            << trace.total_events() << " events)\n";
        return 0;
    }

    // Aggregate spans by name (durations from matched begin/end pairs —
    // validation above guarantees stack discipline) and count instants.
    std::map<std::string, SpanAgg> spans;
    std::map<std::string, std::int64_t> instants;
    struct TrackAgg {
        std::int64_t nodes = 0;      // "node" instants, else span-end payload
        std::int64_t failures = 0;   // "fail" instants
        std::int64_t solutions = 0;  // "solution" instants
        std::int64_t max_depth = 0;
    };
    std::vector<TrackAgg> per_track(trace.tracks.size());

    for (std::size_t t = 0; t < trace.tracks.size(); ++t) {
        const revec::obs::ParsedTrack& track = trace.tracks[t];
        TrackAgg& agg = per_track[t];
        std::vector<const revec::obs::ParsedEvent*> open;
        bool node_instants = false;
        for (const revec::obs::ParsedEvent& e : track.events) {
            if (e.kind == 'B') {
                open.push_back(&e);
            } else if (e.kind == 'E') {
                SpanAgg& s = spans[e.name];
                ++s.count;
                s.total_us += e.ts_us - open.back()->ts_us;
                open.pop_back();
                // Phase-level traces carry the node count on the search /
                // portfolio / worker span-end payload instead of per-node
                // events. (canonical_replay nodes are already included in
                // the enclosing portfolio span's payload.)
                if (!node_instants && (e.name == "search" || e.name == "portfolio" ||
                                       e.name == "worker")) {
                    const auto it = e.args.find("nodes");
                    if (it != e.args.end()) agg.nodes += it->second;
                }
            } else {
                ++instants[e.name];
                const auto depth = e.args.find("depth");
                if (depth != e.args.end() && depth->second > agg.max_depth) {
                    agg.max_depth = depth->second;
                }
                if (e.name == "node") {
                    if (!node_instants) agg.nodes = 0;  // switch to exact counting
                    node_instants = true;
                    ++agg.nodes;
                } else if (e.name == "fail") {
                    ++agg.failures;
                } else if (e.name == "solution") {
                    ++agg.solutions;
                }
            }
        }
    }

    out << path << ": " << trace.tracks.size() << " tracks, " << trace.total_events()
        << " events\n\n";

    revec::Table phases({"phase", "count", "total ms", "mean ms"});
    for (const auto& [name, agg] : spans) {
        phases.add_row({name, std::to_string(agg.count), ms(agg.total_us),
                        ms(agg.count > 0 ? agg.total_us / agg.count : 0)});
    }
    if (phases.rows() > 0) {
        phases.print(out);
        out << "\n";
    }

    revec::Table tree({"track", "events", "nodes", "failures", "solutions", "max depth"});
    for (std::size_t t = 0; t < trace.tracks.size(); ++t) {
        const TrackAgg& agg = per_track[t];
        tree.add_row({trace.tracks[t].name, std::to_string(trace.tracks[t].events.size()),
                      std::to_string(agg.nodes), std::to_string(agg.failures),
                      std::to_string(agg.solutions), std::to_string(agg.max_depth)});
    }
    tree.print(out);

    if (!instants.empty()) {
        out << "\n";
        revec::Table events({"event", "count"});
        for (const auto& [name, count] : instants) {
            events.add_row({name, std::to_string(count)});
        }
        events.print(out);
    }

    // LNS summary: rounds come from the lns_round spans, verdicts from the
    // accept/reject instants the repair stage fires once per round.
    const auto lns_rounds = spans.find("lns_round");
    if (lns_rounds != spans.end()) {
        const std::int64_t accepted =
            instants.count("lns_accept") ? instants.at("lns_accept") : 0;
        const std::int64_t rejected =
            instants.count("lns_reject") ? instants.at("lns_reject") : 0;
        out << "\n";
        revec::Table lns({"lns rounds", "accepted", "rejected", "total ms"});
        lns.add_row({std::to_string(lns_rounds->second.count), std::to_string(accepted),
                     std::to_string(rejected), ms(lns_rounds->second.total_us)});
        lns.print(out);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string path;
    bool validate_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: revec-stats <trace.json|trace.jsonl> [--validate-only]\n\n"
                         "Validates a revecc --trace output and prints a phase/search-tree\n"
                         "breakdown. Exits 2 when the trace fails schema validation.\n";
            return 0;
        }
        if (arg == "--validate-only") {
            validate_only = true;
        } else if (path.empty()) {
            path = arg;
        } else {
            std::cerr << "revec-stats: multiple trace files given\n";
            return 1;
        }
    }
    if (path.empty()) {
        std::cerr << "revec-stats: no trace file given (try --help)\n";
        return 1;
    }
    try {
        return run(path, validate_only, std::cout);
    } catch (const std::exception& e) {
        std::cerr << "revec-stats: " << e.what() << '\n';
        return 2;
    }
}
