// revec-stats — offline reader for the telemetry the tools emit. For
// traces (revecc --trace=F, revecd flight dumps): validates the schema
// (span nesting, timestamp monotonicity) and prints a phase/search-tree
// breakdown; --rid=HEX narrows the view to one service request's story
// (the spans and instants carrying that correlation id). For metrics
// (revecc --metrics=F, revecd --metrics=F): `diff` compares a current
// document against a checked-in baseline under per-metric tolerance rules
// — the CI perf-telemetry gate. Exits 2 on trace validation failure, 3 on
// a metrics diff failure.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "revec/obs/trace_read.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/json.hpp"
#include "revec/support/strings.hpp"
#include "revec/support/table.hpp"

namespace {

struct SpanAgg {
    std::int64_t count = 0;
    std::int64_t total_us = 0;
};

std::string ms(std::int64_t us) { return revec::format_fixed(us / 1000.0, 2); }

std::int64_t parse_rid_hex(const std::string& hex) {
    std::uint64_t rid = 0;
    if (hex.empty() || hex.size() > 16) {
        throw revec::Error("--rid must be 1..16 hex digits");
    }
    for (const char c : hex) {
        rid <<= 4;
        if (c >= '0' && c <= '9') {
            rid |= static_cast<std::uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            rid |= static_cast<std::uint64_t>(10 + c - 'a');
        } else {
            throw revec::Error("--rid must be lowercase hex");
        }
    }
    return static_cast<std::int64_t>(rid);
}

/// Keep only the events that tell `rid`'s story: any span subtree whose
/// begin event carries a matching "rid" arg, plus bare instants carrying
/// it. Whole balanced subtrees are kept, so the filtered trace still
/// validates. Tracks left empty are dropped.
revec::obs::ParsedTrace filter_rid(const revec::obs::ParsedTrace& trace,
                                   std::int64_t rid) {
    revec::obs::ParsedTrace out;
    out.warnings = trace.warnings;
    for (const revec::obs::ParsedTrack& track : trace.tracks) {
        revec::obs::ParsedTrack kept;
        kept.name = track.name;
        std::size_t keep_below = 0;  // stack depth at which a kept subtree opened
        bool keeping = false;
        std::size_t depth = 0;
        for (const revec::obs::ParsedEvent& e : track.events) {
            const auto it = e.args.find("rid");
            const bool matches = it != e.args.end() && it->second == rid;
            if (e.kind == 'B') {
                ++depth;
                if (!keeping && matches) {
                    keeping = true;
                    keep_below = depth;
                }
                if (keeping) kept.events.push_back(e);
            } else if (e.kind == 'E') {
                if (keeping) kept.events.push_back(e);
                if (keeping && depth == keep_below) keeping = false;
                if (depth > 0) --depth;
            } else if (keeping || matches) {
                kept.events.push_back(e);
            }
        }
        if (!kept.events.empty()) out.tracks.push_back(std::move(kept));
    }
    return out;
}

int run(const std::string& path, bool validate_only, const std::string& rid_hex,
        std::ostream& out) {
    revec::obs::ParsedTrace trace = revec::obs::load_trace(path);
    for (const std::string& w : trace.warnings) {
        std::cerr << "revec-stats: warning: " << w << "\n";
    }
    const std::vector<std::string> problems = revec::obs::validate_trace(trace);
    if (!problems.empty()) {
        for (const std::string& p : problems) std::cerr << "revec-stats: " << p << "\n";
        return 2;
    }
    if (!rid_hex.empty()) {
        trace = filter_rid(trace, parse_rid_hex(rid_hex));
        if (trace.tracks.empty()) {
            out << path << ": no events carry rid " << rid_hex << "\n";
            return 0;
        }
        out << "rid " << rid_hex << " — ";
    }
    if (validate_only) {
        out << path << ": ok (" << trace.tracks.size() << " tracks, "
            << trace.total_events() << " events)\n";
        return 0;
    }

    // Aggregate spans by name (durations from matched begin/end pairs —
    // validation above guarantees stack discipline) and count instants.
    std::map<std::string, SpanAgg> spans;
    std::map<std::string, std::int64_t> instants;
    struct TrackAgg {
        std::int64_t nodes = 0;      // "node" instants, else span-end payload
        std::int64_t failures = 0;   // "fail" instants
        std::int64_t solutions = 0;  // "solution" instants
        std::int64_t max_depth = 0;
    };
    std::vector<TrackAgg> per_track(trace.tracks.size());

    for (std::size_t t = 0; t < trace.tracks.size(); ++t) {
        const revec::obs::ParsedTrack& track = trace.tracks[t];
        TrackAgg& agg = per_track[t];
        std::vector<const revec::obs::ParsedEvent*> open;
        bool node_instants = false;
        for (const revec::obs::ParsedEvent& e : track.events) {
            if (e.kind == 'B') {
                open.push_back(&e);
            } else if (e.kind == 'E') {
                SpanAgg& s = spans[e.name];
                ++s.count;
                s.total_us += e.ts_us - open.back()->ts_us;
                open.pop_back();
                // Phase-level traces carry the node count on the search /
                // portfolio / worker span-end payload instead of per-node
                // events. (canonical_replay nodes are already included in
                // the enclosing portfolio span's payload.)
                if (!node_instants && (e.name == "search" || e.name == "portfolio" ||
                                       e.name == "worker")) {
                    const auto it = e.args.find("nodes");
                    if (it != e.args.end()) agg.nodes += it->second;
                }
            } else {
                ++instants[e.name];
                const auto depth = e.args.find("depth");
                if (depth != e.args.end() && depth->second > agg.max_depth) {
                    agg.max_depth = depth->second;
                }
                if (e.name == "node") {
                    if (!node_instants) agg.nodes = 0;  // switch to exact counting
                    node_instants = true;
                    ++agg.nodes;
                } else if (e.name == "fail") {
                    ++agg.failures;
                } else if (e.name == "solution") {
                    ++agg.solutions;
                }
            }
        }
    }

    out << path << ": " << trace.tracks.size() << " tracks, " << trace.total_events()
        << " events\n\n";

    revec::Table phases({"phase", "count", "total ms", "mean ms"});
    for (const auto& [name, agg] : spans) {
        phases.add_row({name, std::to_string(agg.count), ms(agg.total_us),
                        ms(agg.count > 0 ? agg.total_us / agg.count : 0)});
    }
    if (phases.rows() > 0) {
        phases.print(out);
        out << "\n";
    }

    revec::Table tree({"track", "events", "nodes", "failures", "solutions", "max depth"});
    for (std::size_t t = 0; t < trace.tracks.size(); ++t) {
        const TrackAgg& agg = per_track[t];
        tree.add_row({trace.tracks[t].name, std::to_string(trace.tracks[t].events.size()),
                      std::to_string(agg.nodes), std::to_string(agg.failures),
                      std::to_string(agg.solutions), std::to_string(agg.max_depth)});
    }
    tree.print(out);

    if (!instants.empty()) {
        out << "\n";
        revec::Table events({"event", "count"});
        for (const auto& [name, count] : instants) {
            events.add_row({name, std::to_string(count)});
        }
        events.print(out);
    }

    // LNS summary: rounds come from the lns_round spans, verdicts from the
    // accept/reject instants the repair stage fires once per round.
    const auto lns_rounds = spans.find("lns_round");
    if (lns_rounds != spans.end()) {
        const std::int64_t accepted =
            instants.count("lns_accept") ? instants.at("lns_accept") : 0;
        const std::int64_t rejected =
            instants.count("lns_reject") ? instants.at("lns_reject") : 0;
        out << "\n";
        revec::Table lns({"lns rounds", "accepted", "rejected", "total ms"});
        lns.add_row({std::to_string(lns_rounds->second.count), std::to_string(accepted),
                     std::to_string(rejected), ms(lns_rounds->second.total_us)});
        lns.print(out);
    }
    return 0;
}

// -- diff: the metrics regression gate ---------------------------------------

/// How one metric is compared. Defaults per section: counters and labels
/// `exact`, gauges and histograms `ignore` (instantaneous readings and
/// latency distributions are machine-dependent). --rule=GLOB=SPEC
/// overrides; the LAST matching rule wins.
struct DiffRule {
    std::string pattern;
    enum class Kind { Exact, Ignore, Pct, Abs } kind = Kind::Exact;
    double tolerance = 0.0;
};

DiffRule parse_rule(const std::string& text) {
    const std::size_t eq = text.find('=');
    if (eq == std::string::npos || eq == 0) {
        throw revec::Error("--rule needs GLOB=SPEC, got '" + text + "'");
    }
    DiffRule rule;
    rule.pattern = text.substr(0, eq);
    const std::string spec = text.substr(eq + 1);
    if (spec == "exact") {
        rule.kind = DiffRule::Kind::Exact;
    } else if (spec == "ignore") {
        rule.kind = DiffRule::Kind::Ignore;
    } else if (revec::starts_with(spec, "pct:")) {
        rule.kind = DiffRule::Kind::Pct;
        rule.tolerance = revec::parse_double(spec.substr(4));
    } else if (revec::starts_with(spec, "abs:")) {
        rule.kind = DiffRule::Kind::Abs;
        rule.tolerance = revec::parse_double(spec.substr(4));
    } else {
        throw revec::Error("bad rule spec '" + spec +
                           "' (exact | ignore | pct:N | abs:N)");
    }
    return rule;
}

/// One metrics document flattened for comparison. Histograms are
/// represented by their sample count under "<name>.count" so a rule can
/// opt a phase's traffic volume into the gate without gating its shape.
struct FlatMetrics {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, std::string> labels;
    std::map<std::string, std::int64_t> hist_counts;
};

FlatMetrics load_metrics(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw revec::Error("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    const revec::json::Value doc = revec::json::parse(ss.str());
    if (!doc.is(revec::json::Value::Type::Object)) {
        throw revec::Error(path + ": not a metrics JSON document");
    }
    FlatMetrics m;
    const auto section = [&](const char* name) -> const revec::json::Value* {
        const revec::json::Value* v = doc.find(name);
        return v != nullptr && v->is(revec::json::Value::Type::Object) ? v : nullptr;
    };
    if (const revec::json::Value* counters = section("counters")) {
        for (const auto& [name, v] : counters->object) {
            m.counters[name] = static_cast<std::int64_t>(v.number);
        }
    }
    if (const revec::json::Value* gauges = section("gauges")) {
        for (const auto& [name, v] : gauges->object) m.gauges[name] = v.number;
    }
    if (const revec::json::Value* labels = section("labels")) {
        for (const auto& [name, v] : labels->object) m.labels[name] = v.str;
    }
    if (const revec::json::Value* hists = section("histograms")) {
        for (const auto& [name, v] : hists->object) {
            const revec::json::Value* count = v.find("count");
            m.hist_counts[name + ".count"] =
                count != nullptr ? static_cast<std::int64_t>(count->number) : 0;
        }
    }
    return m;
}

const DiffRule* last_matching(const std::vector<DiffRule>& rules,
                              const std::string& name) {
    const DiffRule* hit = nullptr;
    for (const DiffRule& r : rules) {
        if (revec::glob_match(r.pattern, name)) hit = &r;
    }
    return hit;
}

bool within(DiffRule::Kind kind, double tolerance, double base, double cur) {
    switch (kind) {
        case DiffRule::Kind::Exact: return base == cur;
        case DiffRule::Kind::Ignore: return true;
        case DiffRule::Kind::Pct:
            if (base == 0.0) return cur == 0.0;
            return std::abs(cur - base) <= tolerance / 100.0 * std::abs(base);
        case DiffRule::Kind::Abs: return std::abs(cur - base) <= tolerance;
    }
    REVEC_UNREACHABLE("bad DiffRule::Kind");
}

int run_diff(const std::string& baseline_path, const std::string& current_path,
             const std::vector<DiffRule>& rules, std::ostream& out) {
    const FlatMetrics baseline = load_metrics(baseline_path);
    const FlatMetrics current = load_metrics(current_path);
    std::vector<std::string> failures;
    std::vector<std::string> notes;

    // Numeric sections share one comparator; `fallback` is the section
    // default applied when no --rule matches the metric name.
    const auto compare_numeric = [&](const char* section,
                                     const std::map<std::string, std::int64_t>* base_i,
                                     const std::map<std::string, double>* base_d,
                                     const std::map<std::string, std::int64_t>* cur_i,
                                     const std::map<std::string, double>* cur_d,
                                     DiffRule::Kind fallback) {
        const auto base_names = [&]() {
            std::vector<std::string> names;
            if (base_i != nullptr) {
                for (const auto& [n, v] : *base_i) names.push_back(n);
            } else {
                for (const auto& [n, v] : *base_d) names.push_back(n);
            }
            return names;
        }();
        for (const std::string& name : base_names) {
            DiffRule::Kind kind = fallback;
            double tolerance = 0.0;
            if (const DiffRule* rule = last_matching(rules, name); rule != nullptr) {
                kind = rule->kind;
                tolerance = rule->tolerance;
            }
            if (kind == DiffRule::Kind::Ignore) continue;
            const double base = base_i != nullptr
                                    ? static_cast<double>(base_i->at(name))
                                    : base_d->at(name);
            const bool in_current = cur_i != nullptr ? cur_i->count(name) > 0
                                                     : cur_d->count(name) > 0;
            if (!in_current) {
                failures.push_back(std::string(section) + " " + name +
                                   ": missing from current");
                continue;
            }
            const double cur = cur_i != nullptr ? static_cast<double>(cur_i->at(name))
                                                : cur_d->at(name);
            if (!within(kind, tolerance, base, cur)) {
                std::ostringstream os;
                os << section << " " << name << ": baseline " << base << ", current "
                   << cur;
                failures.push_back(os.str());
            }
        }
        // New metrics are informational — a fresh counter is growth, not a
        // regression; pin it by re-baselining.
        const auto note_new = [&](const auto& cur_map, const auto& base_map) {
            for (const auto& [name, v] : cur_map) {
                if (base_map.count(name) == 0) {
                    notes.push_back(std::string(section) + " " + name +
                                    ": new in current");
                }
            }
        };
        if (cur_i != nullptr) {
            note_new(*cur_i, *base_i);
        } else {
            note_new(*cur_d, *base_d);
        }
    };

    compare_numeric("counter", &baseline.counters, nullptr, &current.counters, nullptr,
                    DiffRule::Kind::Exact);
    compare_numeric("gauge", nullptr, &baseline.gauges, nullptr, &current.gauges,
                    DiffRule::Kind::Ignore);
    compare_numeric("histogram", &baseline.hist_counts, nullptr, &current.hist_counts,
                    nullptr, DiffRule::Kind::Ignore);

    for (const auto& [name, base] : baseline.labels) {
        DiffRule::Kind kind = DiffRule::Kind::Exact;
        if (const DiffRule* rule = last_matching(rules, name); rule != nullptr) {
            kind = rule->kind;
        }
        if (kind == DiffRule::Kind::Ignore) continue;
        const auto it = current.labels.find(name);
        if (it == current.labels.end()) {
            failures.push_back("label " + name + ": missing from current");
        } else if (it->second != base) {
            failures.push_back("label " + name + ": baseline \"" + base +
                               "\", current \"" + it->second + "\"");
        }
    }
    for (const auto& [name, v] : current.labels) {
        if (baseline.labels.count(name) == 0) {
            notes.push_back("label " + name + ": new in current");
        }
    }

    for (const std::string& n : notes) out << "note: " << n << "\n";
    for (const std::string& f : failures) out << "FAIL: " << f << "\n";
    out << current_path << " vs " << baseline_path << ": " << failures.size()
        << " failure(s), " << notes.size() << " new metric(s)\n";
    return failures.empty() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
    std::string path;
    std::string rid_hex;
    bool validate_only = false;
    bool diff_mode = false;
    std::vector<std::string> diff_paths;
    std::vector<DiffRule> rules;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                std::cout
                    << "usage: revec-stats <trace.json|trace.jsonl> [--validate-only]\n"
                       "                   [--rid=HEX]\n"
                       "       revec-stats diff <baseline.json> <current.json>\n"
                       "                   [--rule=GLOB=SPEC]...\n\n"
                       "Trace mode validates a trace (revecc --trace, revecd flight\n"
                       "dumps) and prints a phase/search-tree breakdown; --rid=HEX\n"
                       "narrows it to one service request's spans. Exits 2 on schema\n"
                       "validation failure.\n\n"
                       "Diff mode compares two metrics JSON documents under per-metric\n"
                       "tolerance rules. SPEC is exact | ignore | pct:N | abs:N; the\n"
                       "last matching GLOB wins. Defaults: counters and labels exact,\n"
                       "gauges and histograms ignore. A baseline metric missing from\n"
                       "current fails; a new current metric is informational. Exits 3\n"
                       "when any metric is out of tolerance.\n";
                return 0;
            }
            if (arg == "diff" && !diff_mode && path.empty()) {
                diff_mode = true;
            } else if (revec::starts_with(arg, "--rule=")) {
                rules.push_back(parse_rule(arg.substr(7)));
            } else if (revec::starts_with(arg, "--rid=")) {
                rid_hex = arg.substr(6);
            } else if (arg == "--validate-only") {
                validate_only = true;
            } else if (diff_mode) {
                diff_paths.push_back(arg);
            } else if (path.empty()) {
                path = arg;
            } else {
                std::cerr << "revec-stats: multiple trace files given\n";
                return 1;
            }
        }
        if (diff_mode) {
            if (diff_paths.size() != 2) {
                std::cerr << "revec-stats: diff needs <baseline.json> <current.json>\n";
                return 1;
            }
            return run_diff(diff_paths[0], diff_paths[1], rules, std::cout);
        }
        if (path.empty()) {
            std::cerr << "revec-stats: no trace file given (try --help)\n";
            return 1;
        }
        return run(path, validate_only, rid_hex, std::cout);
    } catch (const std::exception& e) {
        std::cerr << "revec-stats: " << e.what() << '\n';
        return 2;
    }
}
