// Ablations of the model-level design choices DESIGN.md calls out:
//  1. pipeline-merge pass on/off (§3.3.1's complexity claim);
//  2. matrix ops vs lowered vector ops (§3.2.2, Figs. 4-5 trade-off);
//  3. memory allocation in the model vs scheduling only.
#include "common.hpp"

#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"
#include "revec/sched/model.hpp"

using namespace revec;

int main() {
    bench::banner("Ablation — model-level design choices",
                  "§3.2.2 / §3.3.1: merging and matrix ops shrink the model; the "
                  "combined model solves scheduling and allocation together");

    const arch::ArchSpec spec = arch::ArchSpec::eit();

    // 1. merge pass on/off for QRD and ARF.
    std::cout << "1) pipeline-merge pass (schedules the unmerged vs merged IR)\n";
    Table t1({"kernel", "IR", "|V|", "makespan (cc)", "nodes", "time (ms)"});
    struct K {
        const char* name;
        ir::Graph raw;
    } kernels[] = {{"QRD", apps::build_qrd()}, {"ARF", apps::build_arf()}};
    for (const K& k : kernels) {
        for (const bool merged : {false, true}) {
            const ir::Graph g = merged ? ir::merge_pipeline_ops(k.raw) : k.raw;
            sched::ScheduleOptions opts;
            opts.spec = spec;
            opts.timeout_ms = 15000;
            sched::Schedule s;
            const double med_ms =
                bench::median_of_3_ms([&] { s = sched::schedule_kernel(g, opts); });
            t1.add_row({k.name, merged ? "merged" : "unmerged",
                        std::to_string(g.num_nodes()),
                        s.feasible() ? std::to_string(s.makespan) : "-",
                        std::to_string(s.stats.nodes), format_fixed(med_ms, 0)});
        }
    }
    t1.print(std::cout);
    bench::note("QRD/ARF have no standalone pre/post ops in our DSL sources, so the "
                "pass is a no-op there; see fig6_pipeline_merge for graphs where it "
                "bites. Kept here to document the (non-)effect honestly.");

    // 2. matrix ops vs lowered on a matrix-heavy kernel.
    std::cout << "\n2) matrix ops vs lowered vector ops (matrix-heavy kernel)\n";
    dsl::Program mp("matrix_heavy");
    {
        const auto a = mp.in_matrix({dsl::Vector::Elems{1, 2, 3, 4},
                                     dsl::Vector::Elems{5, 6, 7, 8},
                                     dsl::Vector::Elems{9, 10, 11, 12},
                                     dsl::Vector::Elems{13, 14, 15, 16}},
                                    "A");
        const auto b = mp.in_matrix({dsl::Vector::Elems{1, 0, 0, 0},
                                     dsl::Vector::Elems{0, 1, 0, 0},
                                     dsl::Vector::Elems{0, 0, 1, 0},
                                     dsl::Vector::Elems{0, 0, 0, 1}},
                                    "B");
        const auto sum = dsl::m_add(a, b);
        const auto norms = dsl::m_squsum(sum);
        const auto s = mp.in_scalar(ir::Complex(0.5, 0), "half");
        const auto scaled = dsl::m_scale(sum, s);
        const auto x = mp.in_vector(1, -1, 1, -1, "x");
        const auto y = dsl::m_vmul(scaled, x);
        mp.mark_output(norms);
        mp.mark_output(y);
    }
    Table t2({"form", "|V|", "vector ops", "matrix ops", "makespan (cc)", "time (ms)"});
    const ir::Graph matrix_form = mp.ir();
    const ir::Graph lowered = ir::lower_matrix_ops(matrix_form);
    for (const auto* g : {&matrix_form, &lowered}) {
        sched::ScheduleOptions opts;
        opts.spec = spec;
        opts.timeout_ms = 15000;
        sched::Schedule s;
        const double med_ms =
            bench::median_of_3_ms([&] { s = sched::schedule_kernel(*g, opts); });
        const ir::GraphStats st = ir::graph_stats(spec, *g);
        t2.add_row({g == &matrix_form ? "matrix ops" : "lowered",
                    std::to_string(st.num_nodes), std::to_string(st.num_vector_ops),
                    std::to_string(st.num_matrix_ops),
                    s.feasible() ? std::to_string(s.makespan) : "-",
                    format_fixed(med_ms, 0)});
    }
    t2.print(std::cout);

    // 3. with vs without memory allocation in the model.
    std::cout << "\n3) combined scheduling+allocation vs scheduling only (QRD)\n";
    Table t3({"model", "makespan (cc)", "slots used", "nodes", "time (ms)"});
    const ir::Graph qrd = bench::kernel_qrd();
    for (const bool memory : {true, false}) {
        sched::ScheduleOptions opts;
        opts.spec = spec;
        opts.memory_allocation = memory;
        opts.timeout_ms = 15000;
        sched::Schedule s;
        const double med_ms =
            bench::median_of_3_ms([&] { s = sched::schedule_kernel(qrd, opts); });
        t3.add_row({memory ? "with memory (paper)" : "scheduling only",
                    s.feasible() ? std::to_string(s.makespan) : "-",
                    std::to_string(s.slots_used), std::to_string(s.stats.nodes),
                    format_fixed(med_ms, 0)});
    }
    t3.print(std::cout);
    bench::note("Table 1's conclusion in ablation form: the memory constraints do not "
                "change the critical-path-dominated makespan, they only decide where "
                "data lives");
    return 0;
}
