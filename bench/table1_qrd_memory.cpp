// Reproduces Table 1: scheduling one QRD iteration with memory allocation
// under varying memory sizes (number of available slots). The paper's
// finding: the schedule length never moves because the critical path
// dominates; memory size only matters at the feasibility cliff (their
// solver timed out at 9 slots and proved infeasibility at 8).
#include "common.hpp"

#include "revec/sched/model.hpp"
#include "revec/sched/verify.hpp"

using namespace revec;

int main() {
    bench::banner("Table 1 — Scheduling QRD on the EIT architecture",
                  "Table 1: schedule length 173 cc at 64/32/16/10 slots; "
                  "|V|=143, |E|=194, |Cr.P|=169, #v_data=49; timeout at 9, UNSAT at 8");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    const ir::Graph g = bench::kernel_qrd();
    const ir::GraphStats st = ir::graph_stats(spec, g);

    std::cout << "Our QRD IR (pipeline-merged): |V|=" << st.num_nodes << ", |E|=" << st.num_edges
              << ", |Cr.P|=" << st.critical_path << ", #v_data=" << st.num_vector_data << '\n';
    bench::note("the paper's exact DSL source is unavailable; our MGS-based MMSE-QRD "
                "has the same op mix and a graph in the same regime");

    Table t({"#slots available", "schedule length (cc)", "#slots used", "opt. time (ms)",
             "status"});
    for (const int slots : {64, 32, 16, 10, 9, 8, 7, 6}) {
        sched::ScheduleOptions opts;
        opts.spec = spec;
        opts.num_slots = slots;
        opts.timeout_ms = 20000;
        const sched::Schedule s = sched::schedule_kernel(g, opts);
        std::string status;
        switch (s.status) {
            case cp::SolveStatus::Optimal: status = "optimal"; break;
            case cp::SolveStatus::SatTimeout: status = "feasible (timeout)"; break;
            case cp::SolveStatus::Timeout: status = "timeout, no solution"; break;
            case cp::SolveStatus::Unsat: status = "UNSAT"; break;
        }
        if (s.feasible()) {
            const auto problems = sched::verify_schedule(spec, g, s);
            if (!problems.empty()) status += " [VERIFY FAILED: " + problems.front() + "]";
        }
        t.add_row({std::to_string(slots),
                   s.feasible() ? std::to_string(s.makespan) : "-",
                   s.feasible() ? std::to_string(s.slots_used) : "-",
                   format_fixed(s.stats.time_ms, 0), status});
    }
    t.print(std::cout);

    std::cout << "\nPaper Table 1 for comparison:\n";
    Table p({"#slots available", "schedule length (cc)", "#slots used", "opt. time (ms)"});
    p.add_row({"64", "173", "33", "1854"});
    p.add_row({"32", "173", "28", "1844"});
    p.add_row({"16", "173", "16", "1813"});
    p.add_row({"10", "173", "10", "1835"});
    p.add_row({"9", "timeout", "-", "-"});
    p.add_row({"8", "UNSAT", "-", "-"});
    p.print(std::cout);

    bench::note("shape reproduced: schedule length equals the critical path and is "
                "invariant to memory size, with a hard feasibility cliff at small sizes; "
                "our cliff sits lower because our kernel has fewer vector data nodes");

    // The paper-literal lifetime definition (eq. 10, excluding the last
    // read) for reference.
    std::cout << "\nPaper-literal lifetime model (eq. 10, lifetime excludes last read):\n";
    Table lit({"#slots available", "schedule length (cc)", "#slots used", "status"});
    for (const int slots : {16, 10, 8, 7, 6}) {
        sched::ScheduleOptions opts;
        opts.spec = spec;
        opts.num_slots = slots;
        opts.timeout_ms = 20000;
        opts.lifetime_includes_last_read = false;
        const sched::Schedule s = sched::schedule_kernel(g, opts);
        lit.add_row({std::to_string(slots), s.feasible() ? std::to_string(s.makespan) : "-",
                     s.feasible() ? std::to_string(s.slots_used) : "-",
                     s.feasible() ? "feasible" : "UNSAT/timeout"});
    }
    lit.print(std::cout);
    return 0;
}
