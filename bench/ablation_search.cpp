// Ablation: the paper's three-phase search heuristic (§3.5, operation
// starts -> data starts -> slots) vs a single first-fail phase over all
// decision variables. The paper argues phases front-load the most
// influential decisions; this harness quantifies it on all three kernels.
#include "common.hpp"

#include "revec/sched/model.hpp"

using namespace revec;

int main() {
    bench::banner("Ablation — three-phase search vs single-phase first-fail",
                  "§3.5: 'start with the most influential decisions and end with the "
                  "most trivial ones'");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    struct K {
        const char* name;
        ir::Graph g;
    } kernels[] = {{"MATMUL", bench::kernel_matmul()},
                   {"QRD", bench::kernel_qrd()},
                   {"ARF", bench::kernel_arf()}};

    struct Strategy {
        const char* label;
        bool three_phase;
        int threads;
    } strategies[] = {{"3-phase (paper)", true, 1},
                      {"single first-fail", false, 1},
                      {"portfolio x4", true, 4}};

    Table t({"kernel", "strategy", "makespan (cc)", "nodes", "failures", "time (ms)",
             "status"});
    for (const K& k : kernels) {
        for (const Strategy& strat : strategies) {
            sched::ScheduleOptions opts;
            opts.spec = spec;
            opts.three_phase_search = strat.three_phase;
            opts.timeout_ms = 15000;
            opts.solver.threads = strat.threads;
            const sched::Schedule s = sched::schedule_kernel(k.g, opts);
            t.add_row({k.name, strat.label,
                       s.feasible() ? std::to_string(s.makespan) : "-",
                       std::to_string(s.stats.nodes), std::to_string(s.stats.failures),
                       format_fixed(s.stats.time_ms, 0),
                       s.proven_optimal() ? "optimal"
                                          : (s.feasible() ? "feasible" : "none")});
        }
    }
    t.print(std::cout);
    bench::note("empirical outcome in THIS solver: both strategies find the same "
                "optima, and plain first-fail often needs fewer nodes (e.g. MATMUL), "
                "because our redundant live-data Cumulative already propagates the "
                "memory feasibility the paper's phase split was protecting against. "
                "With that constraint removed the 3-phase order is what keeps the "
                "slot phase backtrack-free, as §3.5 argues. The portfolio row runs "
                "4 diversified workers over the 3-phase model with a shared best "
                "bound; its node count sums every worker's tree.");
    return 0;
}
