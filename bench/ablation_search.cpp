// Ablation: the paper's three-phase search heuristic (§3.5, operation
// starts -> data starts -> slots) vs a single first-fail phase over all
// decision variables, plus the propagation-engine ablation (legacy
// flat-FIFO/full-snapshot engine vs the event/priority/delta-trail
// engine — identical trees by construction, so the delta is pure
// per-node engine overhead).
#include "common.hpp"

#include "revec/sched/model.hpp"

using namespace revec;

int main(int argc, char** argv) {
    const std::string json_path = bench::json_path_from_args(argc, argv);
    bench::banner("Ablation — three-phase search vs single-phase first-fail",
                  "§3.5: 'start with the most influential decisions and end with the "
                  "most trivial ones'");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    struct K {
        const char* name;
        ir::Graph g;
    } kernels[] = {{"MATMUL", bench::kernel_matmul()},
                   {"QRD", bench::kernel_qrd()},
                   {"ARF", bench::kernel_arf()}};

    struct Strategy {
        const char* label;
        bool three_phase;
        int threads;
        bool legacy_engine;
    } strategies[] = {{"3-phase (paper)", true, 1, false},
                      {"3-phase legacy-engine", true, 1, true},
                      {"single first-fail", false, 1, false},
                      {"portfolio x4", true, 4, false}};

    bench::JsonWriter json;
    json.begin_object();
    json.field("bench", "ablation_search");
    json.begin_array("rows");

    Table t({"kernel", "strategy", "makespan (cc)", "nodes", "failures", "time (ms)",
             "status"});
    for (const K& k : kernels) {
        for (const Strategy& strat : strategies) {
            sched::ScheduleOptions opts;
            opts.spec = spec;
            opts.three_phase_search = strat.three_phase;
            opts.timeout_ms = 15000;
            opts.solver.threads = strat.threads;
            if (strat.legacy_engine) opts.solver.engine = cp::EngineConfig::legacy();
            sched::Schedule s;
            const double med_ms =
                bench::median_of_3_ms([&] { s = sched::schedule_kernel(k.g, opts); });
            const std::string status = s.proven_optimal()
                                           ? "optimal"
                                           : (s.feasible() ? "feasible" : "none");
            t.add_row({k.name, strat.label,
                       s.feasible() ? std::to_string(s.makespan) : "-",
                       std::to_string(s.stats.nodes), std::to_string(s.stats.failures),
                       format_fixed(med_ms, 0), status});
            json.begin_object()
                .field("kernel", k.name)
                .field("strategy", strat.label)
                .field("makespan", s.feasible() ? s.makespan : -1)
                .field("nodes", s.stats.nodes)
                .field("failures", s.stats.failures)
                .field("time_ms", med_ms)
                .field("status", status)
                .end_object();
        }
    }
    t.print(std::cout);
    json.end_array().end_object();
    bench::write_json(json_path, json);
    bench::note("empirical outcome in THIS solver: both strategies find the same "
                "optima, and plain first-fail often needs fewer nodes (e.g. MATMUL), "
                "because our redundant live-data Cumulative already propagates the "
                "memory feasibility the paper's phase split was protecting against. "
                "With that constraint removed the 3-phase order is what keeps the "
                "slot phase backtrack-free, as §3.5 argues. The portfolio row runs "
                "4 diversified workers over the 3-phase model with a shared best "
                "bound; its node count sums every worker's tree. The legacy-engine "
                "row replays the identical tree on the pre-event engine, so its "
                "time delta is pure propagation-engine overhead.");
    return 0;
}
