// Extension — heuristic warm start: what the list-scheduler incumbent buys
// the exact solver (B&B nodes and wall clock, cold vs warm) and what the
// anytime fallback costs in schedule quality (heuristic makespan vs proven
// optimum, and the deadline-0 path). Self-checks that warm and cold agree
// on the optimum, that the seeded search visits strictly fewer nodes on
// MATMUL/QRD, and that a zero deadline still yields a verify-clean
// heuristic schedule; exits non-zero on any failure. Pass --smoke for the
// CI-sized variant (MATMUL only, short deadlines).
#include "common.hpp"

#include <cstring>
#include <vector>

#include "revec/sched/model.hpp"
#include "revec/sched/verify.hpp"
#include "revec/support/stopwatch.hpp"

using namespace revec;

namespace {

struct Run {
    sched::Schedule schedule;
    double wall_ms = 0.0;
};

Run timed_schedule(const ir::Graph& g, const sched::ScheduleOptions& opts) {
    Run r;
    // Solves are deterministic, so re-running for the median only damps
    // wall-clock noise; the schedule of the last run is the schedule of
    // every run.
    r.wall_ms =
        bench::median_of_3_ms([&] { r.schedule = sched::schedule_kernel(g, opts); });
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    bench::banner("Extension — heuristic warm start for the exact scheduler",
                  "§3.5 search, seeded with a verified list-scheduler incumbent; "
                  "greedy slot allocation per eqs. 6-9");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    struct K {
        const char* name;
        ir::Graph g;
        bool strict_nodes;  ///< warm must explore strictly fewer B&B nodes
    };
    std::vector<K> kernels;
    kernels.push_back({"MATMUL", bench::kernel_matmul(), true});
    if (!smoke) {
        kernels.push_back({"QRD", bench::kernel_qrd(), true});
        kernels.push_back({"ARF", bench::kernel_arf(), false});
    }
    const int timeout_ms = smoke ? 10000 : 60000;

    Table t({"kernel", "mode", "makespan (cc)", "nodes", "time (ms)", "status"});
    bool all_ok = true;
    for (const K& k : kernels) {
        sched::ScheduleOptions cold_opts;
        cold_opts.spec = spec;
        cold_opts.timeout_ms = timeout_ms;
        cold_opts.warm_start = false;
        const Run cold = timed_schedule(k.g, cold_opts);

        sched::ScheduleOptions warm_opts = cold_opts;
        warm_opts.warm_start = true;
        const Run warm = timed_schedule(k.g, warm_opts);

        sched::ScheduleOptions heur_opts = cold_opts;
        heur_opts.heuristic_only = true;
        const Run heur = timed_schedule(k.g, heur_opts);

        sched::ScheduleOptions zero_opts;
        zero_opts.spec = spec;
        zero_opts.timeout_ms = 0;
        const Run zero = timed_schedule(k.g, zero_opts);

        const bool parity = cold.schedule.proven_optimal() && warm.schedule.proven_optimal() &&
                            warm.schedule.makespan == cold.schedule.makespan;
        const bool pruned = k.strict_nodes
                                ? warm.schedule.stats.nodes < cold.schedule.stats.nodes
                                : warm.schedule.stats.nodes <= cold.schedule.stats.nodes;
        const bool fallback_ok =
            zero.schedule.status == cp::SolveStatus::HeuristicFallback &&
            sched::verify_schedule(spec, k.g, zero.schedule).empty() &&
            heur.schedule.feasible() &&
            heur.schedule.makespan >= cold.schedule.makespan;
        all_ok = all_ok && parity && pruned && fallback_ok;

        const auto row = [&](const char* mode, const Run& r, const std::string& status) {
            t.add_row({k.name, mode,
                       r.schedule.feasible() ? std::to_string(r.schedule.makespan) : "-",
                       std::to_string(r.schedule.stats.nodes), format_fixed(r.wall_ms, 1),
                       status});
        };
        row("cold", cold, cold.schedule.proven_optimal() ? "optimal" : "NOT PROVEN");
        row("warm", warm, parity ? (pruned ? "optimal, pruned" : "optimal, NOT PRUNED")
                                 : "MISMATCH");
        row("heuristic-only", heur,
            heur.schedule.feasible()
                ? "+" + std::to_string(heur.schedule.makespan - cold.schedule.makespan) +
                      " cc vs optimum"
                : "FAILED");
        row("deadline 0", zero, fallback_ok ? "fallback, verified" : "FALLBACK FAILED");
    }
    t.print(std::cout);
    bench::note("the warm tree is a subtree of the cold tree: the incumbent bound "
                "prunes from the first branch, so node counts can only shrink. The "
                "heuristic gap is the price of the anytime guarantee — a verified "
                "schedule exists at every deadline, including zero.");
    std::cout << (all_ok ? "\nwarm/cold parity, pruning, and fallback checks passed\n"
                         : "\nWARM-START CHECK FAILURES PRESENT\n");
    return all_ok ? 0 : 1;
}
