// Extension — serving a solve stream through the revecd core: a batch of
// concurrent clients replays a request stream with duplicates against one
// in-process Service (the same object revecd wraps in a socket), and the
// harness reports end-to-end throughput, the cache's share of the stream,
// and the shed path under a saturated pool. Self-checks (non-zero exit):
//
//  * every response verify-clean against the requested model;
//  * after a sequential warm-up, every duplicate is served from the cache
//    (svc.cache.hit == duplicate count) — and the cached replay of the
//    whole stream is faster than the cold solve of the distinct models;
//  * with the queue removed (max_queue = 0), 100% of requests shed to a
//    verified HeuristicFallback answer.
//
// Pass --smoke for the CI-sized variant (MATMUL only, small stream); pass
// --metrics <path> to archive the service registry JSON.
#include "common.hpp"

#include <atomic>
#include <cstring>
#include <thread>

#include "revec/model/check.hpp"
#include "revec/model/json.hpp"
#include "revec/sched/model.hpp"
#include "revec/svc/service.hpp"

using namespace revec;

namespace {

svc::Request solve_request(const model::KernelModel& km, std::int64_t id,
                           std::int64_t deadline_ms = -1) {
    svc::Request req;
    req.kind = svc::RequestKind::Solve;
    req.id = id;
    req.deadline_ms = deadline_ms;
    req.model = km;
    return req;
}

std::int64_t counter(const svc::Service& service, const std::string& name) {
    const json::Value doc = json::parse(service.metrics_json());
    const json::Value* counters = doc.find("counters");
    if (counters == nullptr) return 0;
    const json::Value* v = counters->find(name);
    return v == nullptr ? 0 : static_cast<std::int64_t>(v->number);
}

bool verify_clean(const model::KernelModel& km, const svc::Response& r) {
    return r.ok && r.has_schedule() &&
           model::check_schedule(km, r.start, r.slot, r.makespan).empty();
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
    const std::string metrics_path = bench::metrics_path_from_args(argc, argv);

    bench::banner("Extension — scheduling-as-a-service throughput (revecd core)",
                  "batched concurrent solve requests over the §3.3-§3.5 model; "
                  "content-addressed schedule cache + bounded shared solver pool");

    std::vector<std::pair<const char*, model::KernelModel>> models;
    models.emplace_back("MATMUL", sched::lower_for_schedule(bench::kernel_matmul(),
                                                            sched::ScheduleOptions{}));
    if (!smoke) {
        models.emplace_back("QRD", sched::lower_for_schedule(bench::kernel_qrd(),
                                                             sched::ScheduleOptions{}));
        models.emplace_back("ARF", sched::lower_for_schedule(bench::kernel_arf(),
                                                             sched::ScheduleOptions{}));
    }
    const int threads = smoke ? 2 : 4;
    const int per_thread = smoke ? 4 : 16;
    const std::int64_t stream_len = static_cast<std::int64_t>(threads) * per_thread;

    svc::Service::Config config;
    config.pool_workers = 2;
    config.max_queue = 64;
    svc::Service service(config);
    bool all_ok = true;

    // Phase 1 — cold: solve each distinct model once, sequentially.
    double cold_ms = 0.0;
    {
        const Stopwatch watch;
        std::int64_t id = 0;
        for (const auto& [name, km] : models) {
            const svc::Response r = service.handle(solve_request(km, id++, 60000));
            if (!verify_clean(km, r) || r.status != cp::SolveStatus::Optimal ||
                r.cache_hit) {
                std::cout << "COLD SOLVE FAILED: " << name << " " << r.error << "\n";
                all_ok = false;
            }
        }
        cold_ms = watch.elapsed_ms();
    }

    // Phase 2 — replay: concurrent clients stream duplicates of the warmed
    // models; each request must be a verify-clean cache hit.
    std::atomic<int> bad{0};
    double replay_ms = 0.0;
    {
        const Stopwatch watch;
        std::vector<std::thread> clients;
        clients.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t) {
            clients.emplace_back([&, t] {
                for (int j = 0; j < per_thread; ++j) {
                    const auto& [name, km] =
                        models[static_cast<std::size_t>(t + j) % models.size()];
                    const svc::Response r =
                        service.handle(solve_request(km, 1000 + t * 100 + j, 60000));
                    if (!verify_clean(km, r)) ++bad;
                }
            });
        }
        for (std::thread& c : clients) c.join();
        replay_ms = watch.elapsed_ms();
    }
    const std::int64_t hits = counter(service, "svc.cache.hit");
    const bool cache_ok = bad.load() == 0 && hits == stream_len;
    all_ok = all_ok && cache_ok;

    // Phase 3 — saturation: no queue, so every request must shed to a
    // verified heuristic answer (the anytime guarantee under overload).
    svc::Service::Config tight;
    tight.pool_workers = 1;
    tight.max_queue = 0;
    tight.cache_capacity = 0;
    svc::Service saturated(tight);
    std::atomic<int> shed_bad{0};
    {
        std::vector<std::thread> clients;
        for (int t = 0; t < threads; ++t) {
            clients.emplace_back([&, t] {
                for (int j = 0; j < per_thread; ++j) {
                    const auto& [name, km] =
                        models[static_cast<std::size_t>(t + j) % models.size()];
                    const svc::Response s = saturated.handle(
                        solve_request(km, 2000 + t * 100 + j, /*deadline_ms=*/5));
                    const bool clean =
                        s.shed && s.status == cp::SolveStatus::HeuristicFallback &&
                        verify_clean(km, s);
                    if (!clean) ++shed_bad;
                }
            });
        }
        for (std::thread& c : clients) c.join();
    }
    const bool shed_ok =
        shed_bad.load() == 0 &&
        counter(saturated, "svc.queue.shed") == stream_len &&
        counter(saturated, "svc.queue.admitted") == 0;
    all_ok = all_ok && shed_ok;

    Table t({"phase", "requests", "wall (ms)", "req/s", "cache hits", "status"});
    const auto rate = [](std::int64_t n, double ms) {
        return ms > 0.0 ? format_fixed(1000.0 * static_cast<double>(n) / ms, 0) : "-";
    };
    t.add_row({"cold distinct", std::to_string(models.size()), format_fixed(cold_ms, 1),
               rate(static_cast<std::int64_t>(models.size()), cold_ms), "0",
               all_ok || cache_ok ? "optimal, verified" : "FAILED"});
    t.add_row({"cached replay", std::to_string(stream_len), format_fixed(replay_ms, 1),
               rate(stream_len, replay_ms), std::to_string(hits),
               cache_ok ? "all hits, verified" : "CACHE MISSED"});
    t.add_row({"saturated shed", std::to_string(stream_len), "-", "-", "0",
               shed_ok ? "100% shed, verified" : "SHED FAILED"});
    t.print(std::cout);

    bench::note("the replay phase re-asks the warmed models only: its req/s is the "
                "cache-hit service rate (hash + exact-match + re-verify), not a "
                "solver rate. The saturated phase holds the anytime contract with "
                "the pool taken away entirely.");

    if (!metrics_path.empty()) {
        std::ofstream out(metrics_path);
        out << service.metrics_json() << "\n";
        REVEC_EXPECTS(out.good());
        bench::note("wrote metrics to " + metrics_path);
    }

    std::cout << (all_ok ? "\nservice throughput checks passed\n"
                         : "\nSERVICE THROUGHPUT CHECK FAILURES PRESENT\n");
    return all_ok ? 0 : 1;
}
