// Extension — incremental re-solve (DESIGN §5k): a kernel is scheduled
// once, then an edit stream of one-op latency variants is replayed. Each
// variant misses the exact cache but lands in the same structural-
// fingerprint bucket, so the donor schedule is diffed, adapted
// (heur::adapt_schedule) and fed to the exact solver as a warm incumbent.
// The harness measures what that buys: B&B nodes and wall clock of the
// seeded re-solve versus the cold (unseeded) solve of the same variant —
// the same cold baseline ext_warm_start uses — with the heuristic-ladder
// warm solve alongside as the pre-reuse service behavior. A final
// end-to-end Service replay asserts every edit is served as a near hit
// with a verifier-clean, optimal schedule. Self-checks: all three modes
// agree on the optimum, the donor-seeded search explores strictly fewer
// nodes than cold and never more than the ladder, and the adapted seed is
// verifier-clean. Exits non-zero on any failure. Pass --smoke for the
// CI-sized variant (MATMUL only, fewer edits, short deadlines).
#include "common.hpp"

#include <cstring>
#include <vector>

#include "revec/heur/adapt.hpp"
#include "revec/model/check.hpp"
#include "revec/model/fingerprint.hpp"
#include "revec/model/json.hpp"
#include "revec/sched/model.hpp"
#include "revec/svc/service.hpp"

using namespace revec;

namespace {

struct Run {
    sched::Schedule schedule;
    double wall_ms = 0.0;
};

Run timed_solve(const model::KernelModel& m, const sched::ModelSolveOptions& mo) {
    Run r;
    // Solves are deterministic: re-running for the median only damps
    // wall-clock noise, the node count is the node count of every run.
    r.wall_ms = bench::median_of_3_ms([&] { r.schedule = sched::schedule_model(m, mo); });
    return r;
}

/// Change a node's latency consistently (node field + mirroring out-edges).
void set_latency(model::KernelModel& m, int id, int latency) {
    m.nodes[static_cast<std::size_t>(id)].latency = latency;
    for (model::ModelEdge& e : m.edges) {
        if (e.src == id) e.latency = latency;
    }
}

/// The k-th one-op edit of the stream: the k-th multi-cycle op's latency
/// drops by one (downward, so the stale horizon stays valid — the shape an
/// iterative kernel tuner actually produces).
model::KernelModel edited(const model::KernelModel& base, int k) {
    model::KernelModel m = base;
    int seen = 0;
    for (const int op : m.ops) {
        if (m.node(op).latency <= 1) continue;
        if (seen++ == k) {
            set_latency(m, op, m.node(op).latency - 1);
            return m;
        }
    }
    return m;  // fewer multi-cycle ops than edits requested — caller checks
}

svc::Request solve_request(model::KernelModel m, std::int64_t id,
                           std::int64_t deadline_ms) {
    svc::Request req;
    req.kind = svc::RequestKind::Solve;
    req.id = id;
    req.deadline_ms = deadline_ms;
    req.model = std::move(m);
    return req;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    bench::banner(
        "Extension — incremental re-solve over an edit stream",
        "§3.5 search warm-started from an adapted donor schedule; structural "
        "fingerprint + ModelDelta reuse pipeline (DESIGN §5k)");

    struct K {
        const char* name;
        ir::Graph g;
        int edits;
    };
    std::vector<K> kernels;
    kernels.push_back({"MATMUL", bench::kernel_matmul(), smoke ? 2 : 3});
    if (!smoke) kernels.push_back({"QRD", bench::kernel_qrd(), 3});
    const std::int64_t timeout_ms = smoke ? 10000 : 60000;

    Table t({"kernel", "edit", "mode", "makespan (cc)", "nodes", "time (ms)", "status"});
    bool all_ok = true;
    std::int64_t total_cold_nodes = 0;
    std::int64_t total_warm_nodes = 0;
    struct KernelNodes {
        const char* name;
        std::int64_t cold = 0;
        std::int64_t warm = 0;
    };
    std::vector<KernelNodes> per_kernel;
    double total_cold_ms = 0.0;
    double total_warm_ms = 0.0;

    for (const K& k : kernels) {
        per_kernel.push_back({k.name});
        KernelNodes& kn = per_kernel.back();
        const model::KernelModel base =
            sched::lower_for_schedule(k.g, sched::ScheduleOptions{});

        // The donor is the schedule a prior solve left in the cache.
        sched::ModelSolveOptions mo;
        mo.timeout_ms = timeout_ms;
        const Run donor_run = timed_solve(base, mo);
        if (!donor_run.schedule.proven_optimal()) {
            std::cout << k.name << ": base solve not proven optimal, cannot donate\n";
            all_ok = false;
            continue;
        }
        t.add_row({k.name, "-", "base (donor)",
                   std::to_string(donor_run.schedule.makespan),
                   std::to_string(donor_run.schedule.stats.nodes),
                   format_fixed(donor_run.wall_ms, 1), "optimal"});

        for (int e = 0; e < k.edits; ++e) {
            const model::KernelModel variant = edited(base, e);
            if (model::canonical_hash(variant) == model::canonical_hash(base)) {
                std::cout << k.name << ": edit " << e << " produced no change\n";
                all_ok = false;
                continue;
            }

            // Cold: the unseeded exact solve (as ext_warm_start's "cold").
            sched::ModelSolveOptions cold_mo = mo;
            cold_mo.warm_start = false;
            const Run cold = timed_solve(variant, cold_mo);

            // Ladder: the pre-§5k warm service solve (heuristic incumbent).
            const Run ladder = timed_solve(variant, mo);

            // Near: the reuse pipeline — diff, adapt the donor, seed.
            const model::ModelDelta delta = model::diff(base, variant);
            const heur::AdaptResult adapted =
                heur::adapt_schedule(donor_run.schedule.start, delta, variant);
            const bool seeded_clean =
                adapted.ok && model::check_schedule(variant, adapted.start,
                                                    adapted.slot, adapted.makespan)
                                  .empty();
            sched::ModelSolveOptions warm_mo = mo;
            if (adapted.ok) {
                warm_mo.incumbent = sched::IncumbentSeed{
                    adapted.start, adapted.slot, adapted.makespan, adapted.slots_used};
            }
            const Run warm = timed_solve(variant, warm_mo);

            // Warm makespans may legitimately dip *below* the cold CP
            // optimum: the heuristic/adapted incumbent only answers to
            // model::check_schedule, while the CP encoding is conservative
            // in places (the checker, not the CP model, is the source of
            // truth). What must hold: all proven, warm never worse than
            // cold, and the donor seed ties the ladder.
            const bool parity = cold.schedule.proven_optimal() &&
                                ladder.schedule.proven_optimal() &&
                                warm.schedule.proven_optimal() &&
                                ladder.schedule.makespan <= cold.schedule.makespan &&
                                warm.schedule.makespan == ladder.schedule.makespan;
            // The donor incumbent prunes from the first branch: strictly
            // fewer nodes than cold, never more than the ladder's.
            const bool pruned =
                warm.schedule.stats.nodes < cold.schedule.stats.nodes &&
                warm.schedule.stats.nodes <= ladder.schedule.stats.nodes;
            all_ok = all_ok && parity && pruned && seeded_clean;
            total_cold_nodes += cold.schedule.stats.nodes;
            total_warm_nodes += warm.schedule.stats.nodes;
            kn.cold += cold.schedule.stats.nodes;
            kn.warm += warm.schedule.stats.nodes;
            total_cold_ms += cold.wall_ms;
            total_warm_ms += warm.wall_ms;

            const std::string tag = "edit " + std::to_string(e);
            const auto row = [&](const char* mode, const Run& r, const std::string& st) {
                t.add_row({k.name, tag, mode,
                           std::to_string(r.schedule.makespan),
                           std::to_string(r.schedule.stats.nodes),
                           format_fixed(r.wall_ms, 1), st});
            };
            row("cold", cold,
                cold.schedule.proven_optimal() ? "optimal" : "NOT PROVEN");
            row("warm (ladder)", ladder,
                ladder.schedule.proven_optimal() ? "optimal" : "NOT PROVEN");
            row("warm (adapted donor)", warm,
                !seeded_clean ? "SEED NOT CLEAN"
                : !parity     ? "MISMATCH"
                : pruned      ? "optimal, pruned"
                              : "optimal, NOT PRUNED");
        }
    }
    t.print(std::cout);

    for (const KernelNodes& kn : per_kernel) {
        if (kn.warm <= 0) continue;
        bench::note(std::string(kn.name) + " node ratio (cold / adapted-donor warm): " +
                    format_fixed(static_cast<double>(kn.cold) /
                                     static_cast<double>(kn.warm),
                                 2) +
                    "x  (" + std::to_string(kn.cold) + " -> " +
                    std::to_string(kn.warm) + " B&B nodes)");
    }
    if (total_warm_nodes > 0) {
        bench::note("edit-stream node ratio (cold / adapted-donor warm): " +
                    format_fixed(static_cast<double>(total_cold_nodes) /
                                     static_cast<double>(total_warm_nodes),
                                 2) +
                    "x  (" + std::to_string(total_cold_nodes) + " -> " +
                    std::to_string(total_warm_nodes) + " B&B nodes; wall " +
                    format_fixed(total_cold_ms, 1) + " -> " +
                    format_fixed(total_warm_ms, 1) + " ms)");
    }

    // End-to-end: the same edit stream through the Service must be served
    // as near hits — adapted donor seeds counted, every schedule optimal
    // and verifier-clean against the edited model.
    bool svc_ok = true;
    std::int64_t near_hits = 0;
    {
        svc::Service service{svc::Service::Config{}};
        std::int64_t id = 0;
        for (const K& k : kernels) {
            const model::KernelModel base =
                sched::lower_for_schedule(k.g, sched::ScheduleOptions{});
            const svc::Response first =
                service.handle(solve_request(base, ++id, timeout_ms));
            svc_ok = svc_ok && first.ok && first.status == cp::SolveStatus::Optimal;
            for (int e = 0; e < k.edits; ++e) {
                const model::KernelModel variant = edited(base, e);
                const svc::Response r =
                    service.handle(solve_request(variant, ++id, timeout_ms));
                const bool clean =
                    r.ok && r.status == cp::SolveStatus::Optimal && r.near_hit &&
                    model::check_schedule(variant, r.start, r.slot, r.makespan).empty();
                if (!clean) {
                    std::cout << k.name << ": service replay of edit " << e
                              << " was not a clean near hit\n";
                }
                near_hits += r.near_hit ? 1 : 0;
                svc_ok = svc_ok && clean;
            }
        }
    }
    all_ok = all_ok && svc_ok;
    bench::note("service replay: " + std::to_string(near_hits) +
                " edited models served as verified near hits (adapted donor "
                "as warm incumbent, full exact solve each).");

    bench::note("the adapted donor is never served directly — it only tightens "
                "the incumbent bound, and model::check_schedule gates both the "
                "seed and the final answer.");
    std::cout << (all_ok
                      ? "\nincremental re-solve parity, pruning, and service checks passed\n"
                      : "\nINCREMENTAL RE-SOLVE CHECK FAILURES PRESENT\n");
    return all_ok ? 0 : 1;
}
