// Extension — full-toolchain summary for every kernel: DSL trace -> IR ->
// CP schedule + memory -> machine code -> binary encoding -> simulation,
// with all validation gates reported. This is the closed loop the paper
// leaves at "contains all information needed by a code generator".
#include "common.hpp"

#include "revec/apps/detect.hpp"
#include "revec/codegen/encode.hpp"
#include "revec/sched/model.hpp"
#include "revec/sched/verify.hpp"
#include "revec/sim/simulator.hpp"

using namespace revec;

int main() {
    bench::banner("Extension — end-to-end toolchain validation",
                  "Fig. 2 flow, closed with an executing machine model");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    struct K {
        const char* name;
        ir::Graph g;
    } kernels[] = {{"MATMUL", bench::kernel_matmul()},
                   {"QRD", bench::kernel_qrd()},
                   {"ARF", bench::kernel_arf()},
                   {"DETECT", ir::merge_pipeline_ops(apps::build_detect())}};

    Table t({"kernel", "|V|", "makespan (cc)", "slots", "verify", "code (bytes)",
             "reconfigs", "sim outputs", "max |err|"});
    bool all_clean = true;
    for (const K& k : kernels) {
        sched::ScheduleOptions opts;
        opts.spec = spec;
        opts.timeout_ms = 30000;
        const sched::Schedule s = sched::schedule_kernel(k.g, opts);
        if (!s.feasible()) {
            t.add_row({k.name, std::to_string(k.g.num_nodes()), "-", "-", "-", "-", "-",
                       "SCHED FAIL", "-"});
            all_clean = false;
            continue;
        }
        const auto problems = sched::verify_schedule(spec, k.g, s);
        const codegen::MachineProgram prog = codegen::generate_code(spec, k.g, s);
        const auto bundles = codegen::encode_program(k.g, prog);
        const sim::SimResult run = sim::simulate(spec, k.g, prog);
        all_clean = all_clean && problems.empty() && run.clean();
        t.add_row({k.name, std::to_string(k.g.num_nodes()), std::to_string(s.makespan),
                   std::to_string(s.slots_used), problems.empty() ? "clean" : "FAIL",
                   std::to_string(codegen::encoded_size_bytes(bundles)),
                   std::to_string(run.reconfigurations),
                   run.outputs_match ? "match" : "MISMATCH",
                   format_fixed(run.max_output_error, 12)});
    }
    t.print(std::cout);
    std::cout << (all_clean ? "\nall kernels execute bit-exactly against the DSL reference\n"
                            : "\nVALIDATION FAILURES PRESENT\n");
    return all_clean ? 0 : 1;
}
