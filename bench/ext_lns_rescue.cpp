// Extension — rescuing the QRD memory cliff with LNS: at 7 memory slots
// the QRD model is provably UNSAT and at the paper's 8 slots the optimum
// equals the critical path, so the interesting anytime question is how
// fast a *bad* 8-slot incumbent can be repaired when the exact solver's
// budget is gone. This harness seeds large-neighbourhood search from the
// most conservative heuristic ladder rung (serialized vector issue,
// spread write-backs — far above the optimum on purpose) and gives it a
// 500 ms deadline: the probe must return a verify-clean schedule strictly
// better than that seed, or exit non-zero. Pass --smoke for the CI-sized
// variant (the probe and the portfolio cross-check, no relax-pct sweep).
#include "common.hpp"

#include <cstring>

#include "revec/heur/alloc.hpp"
#include "revec/heur/list.hpp"
#include "revec/lns/lns.hpp"
#include "revec/model/check.hpp"
#include "revec/model/kernel_model.hpp"
#include "revec/sched/model.hpp"
#include "revec/support/stopwatch.hpp"

using namespace revec;

namespace {

constexpr int kSlots = 8;
constexpr std::int64_t kDeadlineMs = 500;

struct Seed {
    model::KernelModel km;
    std::vector<int> start;
    std::vector<int> slot;
    int makespan = 0;
    bool ok = false;
};

/// The conservative incumbent the probe starts from: the last heuristic
/// ladder rung plus the greedy slot allocator, re-lowered with a horizon
/// that covers it (the same recipe the LNS test fixtures use).
Seed conservative_seed(const arch::ArchSpec& spec, const ir::Graph& g) {
    Seed seed;
    model::LowerOptions lo0;
    lo0.num_slots = kSlots;
    const model::KernelModel km0 = model::lower_ir(spec, g, lo0);
    const heur::ListResult list =
        heur::priority_list_schedule(km0, heur::ladder().back());
    model::LowerOptions lo = lo0;
    lo.horizon = list.makespan + 2;
    seed.km = model::lower_ir(spec, g, lo);
    const heur::AllocResult alloc = heur::allocate_slots(seed.km, list.start);
    if (!alloc.ok) return seed;
    seed.start = list.start;
    seed.slot = alloc.slot;
    seed.makespan = list.makespan;
    seed.ok =
        model::check_schedule(seed.km, seed.start, seed.slot, seed.makespan).empty();
    return seed;
}

lns::LnsResult deadline_probe(const Seed& seed, double relax_pct) {
    lns::LnsOptions opts;
    opts.seed = 0x9d5u;
    opts.max_rounds = -1;  // deadline-capped, not round-capped
    opts.deadline = Deadline::after_ms(kDeadlineMs);
    opts.tuning.relax_pct = relax_pct;
    return lns::improve_schedule(seed.km, seed.start, seed.slot, seed.makespan, opts);
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
    const std::string metrics_path = bench::metrics_path_from_args(argc, argv);
    obs::MetricsRegistry metrics;

    bench::banner("Extension — rescuing the QRD memory cliff with LNS",
                  "Table 1 memory allocation at 8 slots (7 is UNSAT); anytime "
                  "repair of a conservative incumbent under a 500 ms deadline");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    const ir::Graph g = bench::kernel_qrd();
    const Seed seed = conservative_seed(spec, g);
    if (!seed.ok || seed.makespan <= seed.km.critical_path) {
        std::cout << "SEED CONSTRUCTION FAILED (no verified conservative incumbent "
                     "above the critical path)\n";
        return 1;
    }

    Table t({"run", "makespan (cc)", "rounds", "accepted", "time (ms)", "status"});
    t.add_row({"conservative seed", std::to_string(seed.makespan), "-", "-", "-",
               "+" + std::to_string(seed.makespan - seed.km.critical_path) +
                   " cc vs critical path"});

    // The acceptance probe: default relax fraction, 500 ms, strictly
    // better than the seed and verify-clean or the harness fails.
    bool all_ok = true;
    {
        const Stopwatch watch;
        const lns::LnsResult r = deadline_probe(seed, lns::LnsTuning{}.relax_pct);
        const double wall_ms = watch.elapsed_ms();
        const bool verified =
            model::check_schedule(seed.km, r.start, r.slot, r.makespan).empty();
        const bool rescued = verified && r.improved && r.makespan < seed.makespan;
        all_ok = all_ok && rescued;
        t.add_row({"lns probe (500 ms)", std::to_string(r.makespan),
                   std::to_string(r.rounds), std::to_string(r.accepted),
                   format_fixed(wall_ms, 1),
                   rescued ? "rescued, verified" : "PROBE FAILED"});
        r.export_metrics(metrics);
        metrics.set("lns.seed_makespan", seed.makespan);
        metrics.set("lns.critical_path", seed.km.critical_path);
    }

    // Cross-check through the driver path: a portfolio with LNS workers
    // under the same deadline is never worse than the heuristic seed (the
    // merge keeps the best verified incumbent).
    {
        sched::ScheduleOptions opts;
        opts.spec = spec;
        opts.num_slots = kSlots;
        opts.timeout_ms = kDeadlineMs;
        opts.solver.threads = 2;
        opts.solver.lns_workers = 2;
        const Stopwatch watch;
        const sched::Schedule s = sched::schedule_kernel(g, opts);
        const double wall_ms = watch.elapsed_ms();
        const bool ok = s.feasible() && s.makespan <= seed.makespan;
        all_ok = all_ok && ok;
        t.add_row({"portfolio + 2 lns (500 ms)",
                   s.feasible() ? std::to_string(s.makespan) : "-", "-", "-",
                   format_fixed(wall_ms, 1),
                   ok ? "never worse than seed" : "WORSE THAN SEED"});
    }

    // Full mode: how the relax fraction trades repair-tree size against
    // neighbourhood reach under the same deadline.
    if (!smoke) {
        for (const double pct : {0.1, 0.5}) {
            const Stopwatch watch;
            const lns::LnsResult r = deadline_probe(seed, pct);
            const double wall_ms = watch.elapsed_ms();
            const bool verified =
                model::check_schedule(seed.km, r.start, r.slot, r.makespan).empty();
            all_ok = all_ok && verified && r.makespan <= seed.makespan;
            t.add_row({"lns relax " + std::to_string(static_cast<int>(pct * 100)) + "%",
                       std::to_string(r.makespan), std::to_string(r.rounds),
                       std::to_string(r.accepted), format_fixed(wall_ms, 1),
                       verified ? "verified" : "VERIFY FAILED"});
        }
    }

    t.print(std::cout);
    bench::note("the seed serializes vector issue and spreads write-backs, so the "
                "hot-row and critical-path selectors find compressible windows "
                "immediately; every accepted round re-verifies against the base "
                "model before it becomes the incumbent.");
    bench::write_metrics(metrics_path, metrics);
    std::cout << (all_ok ? "\nLNS rescue probe passed\n"
                         : "\nLNS RESCUE FAILURES PRESENT\n");
    return all_ok ? 0 : 1;
}
