// Regenerates Fig. 3: the intermediate representation of listing 1 (matrix
// multiplication in the DSL). Emits the DOT rendering and the XML the DSL
// produces, and checks the structural facts the figure shows: 16 v_dotP
// operation nodes, 4 merge nodes, rectangles for data / ovals for ops.
#include "common.hpp"

#include <fstream>

#include "revec/dsl/eval.hpp"
#include "revec/ir/dot.hpp"
#include "revec/ir/xml_io.hpp"

using namespace revec;

int main() {
    bench::banner("Fig. 3 — Intermediate representation of listing 1 (MATMUL)",
                  "Fig. 3 + §3.2: bipartite DAG, matrix expanded to 4 vectors, "
                  "merge nodes for the result rows");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    const ir::Graph g = apps::build_matmul();
    const ir::GraphStats st = ir::graph_stats(spec, g);

    Table t({"property", "ours", "paper"});
    t.add_row({"|V|", std::to_string(st.num_nodes), "44"});
    t.add_row({"|E|", std::to_string(st.num_edges), "68"});
    t.add_row({"|Cr.P| (cc)", std::to_string(st.critical_path), "8"});
    t.add_row({"v_dotP nodes", std::to_string(st.num_vector_ops), "16"});
    t.add_row({"merge nodes", std::to_string(st.num_index_merge), "4"});
    t.add_row({"vector_data nodes", std::to_string(st.num_vector_data), "8"});
    t.add_row({"scalar_data nodes", std::to_string(st.num_scalar_data), "16"});
    t.print(std::cout);

    const std::string dot_path = "fig3_matmul_ir.dot";
    const std::string xml_path = "fig3_matmul_ir.xml";
    ir::save_dot(g, dot_path);
    ir::save_xml(g, xml_path);
    std::cout << "\nDOT written to " << dot_path << " (render with: dot -Tpdf)\n";
    std::cout << "XML written to " << xml_path << " (the DSL's IR output format)\n";

    // Round-trip sanity: the XML is what the scheduler would consume.
    const ir::Graph back = ir::load_xml(xml_path);
    const auto ref = dsl::evaluate(g);
    const auto loaded = dsl::evaluate(back);
    double err = 0;
    for (const int out : g.output_nodes()) {
        for (std::size_t k = 0; k < 4; ++k) {
            err = std::max(err, std::abs(ref[static_cast<std::size_t>(out)].elems[k] -
                                         loaded[static_cast<std::size_t>(out)].elems[k]));
        }
    }
    std::cout << "XML round-trip max output error: " << err << " (must be 0)\n";
    return err == 0.0 ? 0 : 1;
}
