// Regenerates Figs. 4-5: a matrix operation in the DSL (A.m_squsum) as a
// single matrix_op node vs its expansion into four vector operations plus a
// merge node. Shows the node-count trade-off §3.2.2 discusses ("using the
// matrix versions removes these merge nodes and decreases the total number
// of nodes") and verifies both forms compute the same values.
#include "common.hpp"

#include "revec/dsl/eval.hpp"
#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"
#include "revec/ir/dot.hpp"
#include "revec/sched/model.hpp"

using namespace revec;

namespace {

ir::Graph build_squsum_matrix() {
    dsl::Program p("m_squsum");
    const dsl::Matrix a = p.in_matrix(
        {dsl::Vector::Elems{1, 2, 3, 4}, dsl::Vector::Elems{5, 6, 7, 8},
         dsl::Vector::Elems{9, 10, 11, 12}, dsl::Vector::Elems{13, 14, 15, 16}},
        "A");
    p.mark_output(dsl::m_squsum(a));
    return p.ir();
}

}  // namespace

int main() {
    bench::banner("Figs. 4-5 — Matrix operation vs vector expansion (A.m_squsum)",
                  "§3.2.2: matrix op = one node; vector form = 4 ops + 4 scalars + merge");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    const ir::Graph matrix_form = build_squsum_matrix();
    ir::PassStats pass_stats;
    const ir::Graph vector_form = ir::lower_matrix_ops(matrix_form, &pass_stats);

    const ir::GraphStats sm = ir::graph_stats(spec, matrix_form);
    const ir::GraphStats sv = ir::graph_stats(spec, vector_form);

    Table t({"property", "matrix op (Fig. 4)", "vector expansion (Fig. 5)"});
    t.add_row({"|V|", std::to_string(sm.num_nodes), std::to_string(sv.num_nodes)});
    t.add_row({"|E|", std::to_string(sm.num_edges), std::to_string(sv.num_edges)});
    t.add_row({"matrix_op nodes", std::to_string(sm.num_matrix_ops),
               std::to_string(sv.num_matrix_ops)});
    t.add_row({"vector_op nodes", std::to_string(sm.num_vector_ops),
               std::to_string(sv.num_vector_ops)});
    t.add_row({"merge nodes", std::to_string(sm.num_index_merge),
               std::to_string(sv.num_index_merge)});
    t.add_row({"|Cr.P| (cc)", std::to_string(sm.critical_path),
               std::to_string(sv.critical_path)});
    t.print(std::cout);

    // Values must agree.
    const auto vm = dsl::evaluate(matrix_form);
    const auto vv = dsl::evaluate(vector_form);
    const int om = matrix_form.output_nodes()[0];
    const int ov = vector_form.output_nodes()[0];
    double err = 0;
    for (std::size_t k = 0; k < 4; ++k) {
        err = std::max(err, std::abs(vm[static_cast<std::size_t>(om)].elems[k] -
                                     vv[static_cast<std::size_t>(ov)].elems[k]));
    }
    std::cout << "\nvalue agreement max error: " << err << " (must be 0)\n";

    // Schedule both: the matrix form occupies all lanes for one cycle; the
    // vector form needs more issue slots plus the merge.
    for (const auto* pair : {&matrix_form, &vector_form}) {
        const sched::Schedule s = sched::schedule_kernel(*pair);
        std::cout << (pair == &matrix_form ? "matrix form" : "vector form")
                  << " optimal makespan: " << s.makespan << " cc\n";
    }

    ir::save_dot(matrix_form, "fig4_matrix_op.dot");
    ir::save_dot(vector_form, "fig5_vector_expansion.dot");
    std::cout << "DOT written to fig4_matrix_op.dot / fig5_vector_expansion.dot\n";
    return err == 0.0 ? 0 : 1;
}
