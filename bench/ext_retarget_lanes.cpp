// Extension series (the paper's future work: "targeting other vector
// architectures"): kernel makespans and modulo IIs as the architecture is
// retargeted across lane counts, showing where each kernel stops being
// issue-bound and becomes latency- or scalar-unit-bound.
#include "common.hpp"

#include <map>

#include "revec/pipeline/modulo.hpp"
#include "revec/sched/model.hpp"

using namespace revec;

int main() {
    bench::banner("Extension — retargeting across vector lane counts",
                  "§5 future work: 'targeting other vector architectures'");

    struct K {
        const char* name;
        ir::Graph g;
    } kernels[] = {{"MATMUL", bench::kernel_matmul()},
                   {"QRD", bench::kernel_qrd()},
                   {"ARF", bench::kernel_arf()}};

    Table t({"kernel", "lanes", "makespan (cc)", "modulo actual II (cc)",
             "binding resource"});
    for (const K& k : kernels) {
        for (const int lanes : {1, 2, 4, 8}) {
            arch::ArchSpec spec = arch::ArchSpec::eit();
            spec.vector_lanes = lanes;
            spec.validate();

            sched::ScheduleOptions sopts;
            sopts.spec = spec;
            sopts.timeout_ms = 20000;
            const sched::Schedule s = sched::schedule_kernel(k.g, sopts);

            pipeline::ModuloOptions mopts;
            mopts.spec = spec;
            mopts.include_reconfigs = true;
            mopts.timeout_ms = 20000;
            const pipeline::ModuloResult mod = pipeline::modulo_schedule(k.g, mopts);

            // Who binds the modulo kernel at this width?
            std::string binding = "vector lanes";
            {
                int scalar_ops = 0;
                int ix_ops = 0;
                std::map<std::string, int> lane_demand;
                for (const ir::Node& n : k.g.nodes()) {
                    if (!n.is_op()) continue;
                    const ir::NodeTiming ti = ir::node_timing(spec, n);
                    if (ti.lanes > 0) {
                        lane_demand[ir::config_key(n)] += ti.lanes;
                    } else if (n.cat == ir::NodeCat::ScalarOp) {
                        ++scalar_ops;
                    } else {
                        ++ix_ops;
                    }
                }
                int vec_bound = 0;
                for (const auto& [key, demand] : lane_demand) {
                    vec_bound += (demand + lanes - 1) / lanes;
                }
                if (scalar_ops >= vec_bound && scalar_ops >= ix_ops) binding = "scalar unit";
                else if (ix_ops > vec_bound) binding = "index/merge unit";
            }

            t.add_row({k.name, std::to_string(lanes),
                       s.feasible() ? std::to_string(s.makespan) : "-",
                       mod.feasible() ? std::to_string(mod.actual_ii) : "-", binding});
        }
    }
    t.print(std::cout);
    bench::note("the latency-bound single-iteration makespan barely moves with lane "
                "count (the paper's Table 1 story), while the modulo II tracks the "
                "binding resource: MATMUL scales with lanes until the merge unit "
                "binds; QRD is scalar-accelerator-bound at every width");
    return 0;
}
