// Extension series (no single paper figure, but §4.2-4.3's narrative):
// throughput of QRD as a function of how many iterations run together,
// for all three execution strategies. Shows the latency-masking knee of
// overlapped execution at M >= pipeline depth and modulo scheduling's
// M-independent steady-state rate.
#include "common.hpp"

#include "revec/pipeline/expand.hpp"
#include "revec/pipeline/manual.hpp"
#include "revec/pipeline/modulo.hpp"
#include "revec/pipeline/overlap.hpp"
#include "revec/sched/model.hpp"
#include "revec/sched/verify.hpp"

using namespace revec;

int main() {
    bench::banner("Extension — throughput vs. iterations in flight (QRD)",
                  "§4.2: single-iteration schedules under-utilize the pipeline; "
                  "§4.3: overlapping masks latency once M >= pipeline depth; "
                  "modulo scheduling sustains 1/II regardless of M");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    const ir::Graph g = bench::kernel_qrd();

    sched::ScheduleOptions sopts;
    sopts.spec = spec;
    sopts.timeout_ms = 20000;
    sched::Schedule single;
    const double single_ms =
        bench::median_of_3_ms([&] { single = sched::schedule_kernel(g, sopts); });
    if (!single.feasible()) {
        std::cout << "single-iteration scheduling failed\n";
        return 1;
    }
    const pipeline::IterationSequence manual = pipeline::pack_min_instructions(spec, g);

    pipeline::ModuloOptions mopts;
    mopts.spec = spec;
    mopts.include_reconfigs = true;
    mopts.timeout_ms = 30000;
    pipeline::ModuloResult mod;
    const double modulo_ms =
        bench::median_of_3_ms([&] { mod = pipeline::modulo_schedule(g, mopts); });

    Table t({"M", "back-to-back (iter/cc)", "overlapped (iter/cc)", "overlap stalls",
             "modulo steady-state (iter/cc)"});
    for (const int m : {1, 2, 4, 7, 8, 12, 16, 24}) {
        const double back_to_back = static_cast<double>(m) / (m * single.makespan);
        const pipeline::OverlapResult ov = pipeline::overlapped_execution(spec, g, manual, m);
        // Modulo: fill + steady state; report asymptotic-aware effective rate.
        const double modulo_rate =
            mod.feasible()
                ? static_cast<double>(m) /
                      (mod.actual_ii * (m - 1) + ir::critical_path_length(spec, g))
                : 0.0;
        t.add_row({std::to_string(m), format_fixed(back_to_back, 4),
                   format_fixed(ov.throughput, 4), std::to_string(ov.stalls_inserted),
                   format_fixed(modulo_rate, 4)});
    }
    t.print(std::cout);

    std::cout << "\nsolve wall-clock (median of 3): single-iteration "
              << format_fixed(single_ms, 0) << " ms, modulo " << format_fixed(modulo_ms, 0)
              << " ms\n";
    std::cout << "pipeline depth = " << spec.pipeline_stages
              << ": overlapping stops inserting stalls once M reaches it; modulo's "
                 "steady-state rate is 1/"
              << mod.actual_ii << " = " << format_fixed(1.0 / mod.actual_ii, 4) << "\n";
    bench::note("burstiness: overlapped execution emits all outputs at the end of the "
                "run, modulo scheduling emits one result every II cycles (the paper's "
                "'stable throughput' argument)");
    return 0;
}
