// Extension — parallel portfolio scaling: wall-clock speedup of the
// shared-bound portfolio solver over the sequential branch-and-bound at
// 1/2/4/8 threads on the paper's kernels (Table 2/3 regime). Self-checks
// that every thread count proves the same optimal makespan the sequential
// solver finds; exits non-zero on any parity or optimality failure. Pass
// --smoke for the CI-sized variant (MATMUL only, 1/2 threads).
#include "common.hpp"

#include <cstring>
#include <vector>

#include "revec/sched/model.hpp"
#include "revec/support/stopwatch.hpp"

using namespace revec;

namespace {

struct Run {
    sched::Schedule schedule;
    double wall_ms = 0.0;
};

Run timed_schedule(const ir::Graph& g, const arch::ArchSpec& spec, int threads) {
    sched::ScheduleOptions opts;
    opts.spec = spec;
    opts.timeout_ms = 60000;
    opts.solver.threads = threads;
    // Cold search: this harness measures how the portfolio splits a
    // non-trivial tree; the heuristic incumbent would collapse it (that
    // effect has its own harness, ext_warm_start).
    opts.warm_start = false;
    // Median-of-3 (bench::median_of_3_ms): speedup ratios amplify noise,
    // so each cell gets the damped statistic. The schedule itself is the
    // last run's — all three prove the same optimum or the parity check
    // below fails anyway.
    Run r;
    r.wall_ms = bench::median_of_3_ms([&] { r.schedule = sched::schedule_kernel(g, opts); });
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    for (int i = 1; i < argc; ++i) smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;
    const std::string metrics_path = bench::metrics_path_from_args(argc, argv);
    obs::MetricsRegistry metrics;

    bench::banner("Extension — portfolio solver scaling (1/2/4/8 threads)",
                  "§3.5 search, parallelised as a diversified portfolio with a "
                  "shared best bound");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    struct K {
        const char* name;
        ir::Graph g;
    };
    std::vector<K> kernels;
    kernels.push_back({"MATMUL", bench::kernel_matmul()});
    if (!smoke) {
        kernels.push_back({"QRD", bench::kernel_qrd()});
        kernels.push_back({"ARF", bench::kernel_arf()});
    }
    const std::vector<int> thread_counts = smoke ? std::vector<int>{1, 2}
                                                 : std::vector<int>{1, 2, 4, 8};

    Table t({"kernel", "threads", "makespan (cc)", "nodes (all workers)", "time (ms)",
             "speedup", "status"});
    bool all_ok = true;
    double best_speedup_4t = 0.0;
    for (const K& k : kernels) {
        const Run seq = timed_schedule(k.g, spec, 1);
        all_ok = all_ok && seq.schedule.proven_optimal();
        for (const int threads : thread_counts) {
            const Run r = threads == 1 ? seq : timed_schedule(k.g, spec, threads);
            const bool parity = r.schedule.proven_optimal() &&
                                r.schedule.makespan == seq.schedule.makespan;
            all_ok = all_ok && parity;
            const double speedup = r.wall_ms > 0.0 ? seq.wall_ms / r.wall_ms : 0.0;
            if (threads == 4 && speedup > best_speedup_4t) best_speedup_4t = speedup;
            const std::string prefix =
                std::string(k.name) + "." + std::to_string(threads) + "t.";
            r.schedule.stats.export_metrics(metrics, prefix);
            metrics.set(prefix + "makespan", r.schedule.makespan);
            metrics.gauge(prefix + "wall_ms", r.wall_ms);
            t.add_row({k.name, std::to_string(threads),
                       r.schedule.feasible() ? std::to_string(r.schedule.makespan) : "-",
                       std::to_string(r.schedule.stats.nodes), format_fixed(r.wall_ms, 1),
                       threads == 1 ? "1.00x" : format_fixed(speedup, 2) + "x",
                       parity ? "optimal, parity" : "MISMATCH"});
        }
    }
    t.print(std::cout);
    std::cout << "best 4-thread speedup: " << format_fixed(best_speedup_4t, 2) << "x\n";
    bench::note("the shared incumbent is what scales: a diversified worker finds a "
                "near-optimal makespan early, and every other worker's tree collapses "
                "under the tightened bound — superlinear speedups on MATMUL are the "
                "portfolio effect, not parallel tree splitting.");
    std::cout << (all_ok ? "\nall thread counts prove the sequential optimum\n"
                         : "\nPARITY FAILURES PRESENT\n");
    bench::write_metrics(metrics_path, metrics);
    return all_ok ? 0 : 1;
}
