// google-benchmark microbenchmarks for the CP kernel primitives: domain
// operations, propagation throughput of the global constraints, and
// end-to-end kernel scheduling. These are engineering benchmarks (no paper
// counterpart); they guard the solver's performance envelope.
//
// Before the google-benchmark suite runs, an engine-comparison pass pits
// the legacy flat-FIFO/full-snapshot engine against the event/priority/
// delta-trail engine on a hole-heavy workload and on kernel scheduling;
// `--json <path>` writes those counters (the checked-in BENCH_cp_engine
// .json baseline). Remaining flags pass through to google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>

#include "common.hpp"
#include "revec/apps/matmul.hpp"
#include "revec/apps/qrd.hpp"
#include "revec/cp/alldifferent.hpp"
#include "revec/cp/cumulative.hpp"
#include "revec/cp/diff2.hpp"
#include "revec/cp/linear.hpp"
#include "revec/cp/search.hpp"
#include "revec/ir/passes.hpp"
#include "revec/obs/trace.hpp"
#include "revec/pipeline/modulo.hpp"
#include "revec/sched/model.hpp"
#include "revec/support/stopwatch.hpp"

namespace {

using namespace revec;

void BM_DomainRemoveRange(benchmark::State& state) {
    for (auto _ : state) {
        cp::Domain d(0, 1000);
        for (int i = 0; i < 100; ++i) d.remove_range(i * 7, i * 7 + 3);
        benchmark::DoNotOptimize(d.size());
    }
}
BENCHMARK(BM_DomainRemoveRange);

void BM_StorePushPop(benchmark::State& state) {
    cp::Store s;
    std::vector<cp::IntVar> xs;
    for (int i = 0; i < 64; ++i) xs.push_back(s.new_var(0, 1000));
    for (auto _ : state) {
        s.push_level();
        for (const cp::IntVar x : xs) s.set_min(x, 10);
        s.pop_level();
    }
}
BENCHMARK(BM_StorePushPop);

void BM_CumulativePropagation(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        cp::Store s;
        std::vector<cp::CumulTask> tasks;
        for (int i = 0; i < n; ++i) tasks.push_back({s.new_var(0, 2 * n), 3, 1});
        cp::post_cumulative(s, tasks, 4);
        state.ResumeTiming();
        benchmark::DoNotOptimize(s.propagate());
    }
}
BENCHMARK(BM_CumulativePropagation)->Arg(16)->Arg(64)->Arg(128);

void BM_Diff2Propagation(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        cp::Store s;
        std::vector<cp::Rect> rects;
        for (int i = 0; i < n; ++i) {
            rects.push_back({s.new_var(0, 100), s.new_var(0, 15), s.new_var(4, 8), 1});
        }
        cp::post_diff2(s, rects);
        state.ResumeTiming();
        benchmark::DoNotOptimize(s.propagate());
    }
}
BENCHMARK(BM_Diff2Propagation)->Arg(16)->Arg(48);

void BM_ScheduleMatmul(benchmark::State& state) {
    const ir::Graph g = apps::build_matmul();
    for (auto _ : state) {
        const sched::Schedule s = sched::schedule_kernel(g);
        benchmark::DoNotOptimize(s.makespan);
    }
}
BENCHMARK(BM_ScheduleMatmul)->Unit(benchmark::kMillisecond);

void BM_ScheduleQrd(benchmark::State& state) {
    const ir::Graph g = ir::merge_pipeline_ops(apps::build_qrd());
    for (auto _ : state) {
        sched::ScheduleOptions opts;
        opts.timeout_ms = 60000;
        const sched::Schedule s = sched::schedule_kernel(g, opts);
        benchmark::DoNotOptimize(s.makespan);
    }
}
BENCHMARK(BM_ScheduleQrd)->Unit(benchmark::kMillisecond);

void BM_ModuloMatmul(benchmark::State& state) {
    const ir::Graph g = apps::build_matmul();
    for (auto _ : state) {
        const pipeline::ModuloResult r = pipeline::modulo_schedule(g);
        benchmark::DoNotOptimize(r.actual_ii);
    }
}
BENCHMARK(BM_ModuloMatmul)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Engine comparison: legacy vs event-driven on identical search trees.

/// Hole-heavy CSP: disequalities and an alldifferent punch interior holes
/// into domains watched by bounds-consistent linear/cumulative propagators.
/// The legacy engine wakes every watcher on every hole; the event engine
/// filters them by subscription mask.
cp::SolveResult solve_hole_heavy(const cp::EngineConfig& engine) {
    cp::Store s{engine};
    constexpr int kN = 9;
    std::vector<cp::IntVar> xs;
    for (int i = 0; i < kN; ++i) xs.push_back(s.new_var(0, 2 * kN));
    cp::post_all_different(s, xs);
    for (int i = 0; i < kN; ++i) {
        for (int j = i + 1; j < kN; ++j) {
            cp::post_not_equal(s, xs[static_cast<std::size_t>(i)],
                               xs[static_cast<std::size_t>(j)], j - i);
        }
    }
    for (int i = 0; i + 1 < kN; ++i) {
        cp::post_linear_leq(s, {{1, xs[static_cast<std::size_t>(i)]},
                                {-1, xs[static_cast<std::size_t>(i + 1)]}},
                            2 * kN);
    }
    std::vector<cp::CumulTask> tasks;
    for (const cp::IntVar x : xs) tasks.push_back({x, 2, 1});
    cp::post_cumulative(s, tasks, 3);

    std::vector<cp::LinTerm> terms;
    for (const cp::IntVar x : xs) terms.push_back({1, x});
    const cp::IntVar obj = s.new_var(0, 2 * kN * kN, "obj");
    terms.push_back({-1, obj});
    cp::post_linear_eq(s, terms, 0);

    return cp::solve(s, {cp::Phase{xs, cp::VarSelect::MinDomain, cp::ValSelect::Min, ""}},
                     obj);
}

/// Median-of-3 wall-clock of a warm-started matmul schedule under the
/// given engine.
double time_schedule_matmul(const cp::EngineConfig& engine) {
    const ir::Graph g = ir::merge_pipeline_ops(apps::build_matmul());
    sched::ScheduleOptions opts;
    opts.timeout_ms = 60000;
    opts.solver.engine = engine;
    return bench::median_of_3_ms([&] {
        const sched::Schedule s = sched::schedule_kernel(g, opts);
        REVEC_EXPECTS(s.proven_optimal());
    });
}

void emit_engine_stats(bench::JsonWriter& json, const char* key,
                       const cp::SolveResult& r) {
    json.begin_object(key)
        .field("nodes", r.stats.nodes)
        .field("failures", r.stats.failures)
        .field("time_ms", r.stats.time_ms)
        .field("propagations", r.prop_stats.propagations)
        .field("wakeups", r.prop_stats.wakeups)
        .field("wakeups_filtered", r.prop_stats.wakeups_filtered)
        .field("self_wakeups_suppressed", r.prop_stats.self_wakeups_suppressed)
        .field("trail_saves", r.prop_stats.trail_saves)
        .field("trail_snapshots", r.prop_stats.trail_snapshots)
        .field("trail_word_diffs", r.prop_stats.trail_word_diffs)
        .field("trail_bytes", r.prop_stats.trail_bytes)
        .field("packed_converts", r.prop_stats.packed_converts)
        .end_object();
}

/// The event engine with the interval (PR 3) domain representation.
cp::EngineConfig interval_config() {
    cp::EngineConfig cfg;
    cfg.packed_domains = false;
    return cfg;
}

/// Run the representation-ablation comparison (legacy engine, event engine
/// on interval domains, event engine on packed domains), print it,
/// self-check three-way node parity plus the >= 2x wakeup-reduction and
/// trail-shrink acceptance bounds, and fill the JSON document.
bool run_engine_comparison(bench::JsonWriter& json) {
    // The solves are deterministic (counters identical run to run), so
    // only the wall clock needs damping: keep one run's stats and replace
    // its time with the median over three runs (bench::median_of_3_ms).
    const auto solve_median = [](const cp::EngineConfig& engine) {
        cp::SolveResult r;
        const double ms = bench::median_of_3_ms([&] { r = solve_hole_heavy(engine); });
        r.stats.time_ms = ms;
        return r;
    };
    const cp::SolveResult legacy = solve_median(cp::EngineConfig::legacy());
    const cp::SolveResult interval = solve_median(interval_config());
    const cp::SolveResult packed = solve_median(cp::EngineConfig{});

    const double wakeup_ratio =
        static_cast<double>(legacy.prop_stats.wakeups) /
        static_cast<double>(std::max<std::int64_t>(1, packed.prop_stats.wakeups));
    const double rep_speedup =
        interval.stats.time_ms / std::max(1e-9, packed.stats.time_ms);
    const double trail_ratio =
        static_cast<double>(interval.prop_stats.trail_bytes) /
        static_cast<double>(std::max<std::int64_t>(1, packed.prop_stats.trail_bytes));
    const double matmul_legacy_ms = time_schedule_matmul(cp::EngineConfig::legacy());
    const double matmul_interval_ms = time_schedule_matmul(interval_config());
    const double matmul_packed_ms = time_schedule_matmul(cp::EngineConfig{});

    Table t({"workload", "engine", "nodes", "wakeups", "propagations", "trail bytes",
             "time (ms)"});
    const auto hole_row = [&](const char* engine, const cp::SolveResult& r) {
        t.add_row({"hole-heavy CSP", engine, std::to_string(r.stats.nodes),
                   std::to_string(r.prop_stats.wakeups),
                   std::to_string(r.prop_stats.propagations),
                   std::to_string(r.prop_stats.trail_bytes),
                   format_fixed(r.stats.time_ms, 1)});
    };
    hole_row("legacy", legacy);
    hole_row("event+interval", interval);
    hole_row("event+packed", packed);
    t.add_row({"matmul schedule", "legacy", "-", "-", "-", "-",
               format_fixed(matmul_legacy_ms, 1)});
    t.add_row({"matmul schedule", "event+interval", "-", "-", "-", "-",
               format_fixed(matmul_interval_ms, 1)});
    t.add_row({"matmul schedule", "event+packed", "-", "-", "-", "-",
               format_fixed(matmul_packed_ms, 1)});
    t.print(std::cout);
    bench::note("wakeup reduction (legacy/packed): " + format_fixed(wakeup_ratio, 2) +
                "x");
    bench::note("packed-domain speedup over interval (hole-heavy time): " +
                format_fixed(rep_speedup, 2) + "x");
    bench::note("packed-domain trail shrink over interval: " +
                format_fixed(trail_ratio, 2) + "x");

    json.begin_object("engine_comparison");
    emit_engine_stats(json, "hole_heavy_legacy", legacy);
    emit_engine_stats(json, "hole_heavy_interval", interval);
    emit_engine_stats(json, "hole_heavy_packed", packed);
    json.field("wakeup_ratio", wakeup_ratio)
        .field("representation_speedup", rep_speedup)
        .field("trail_shrink_ratio", trail_ratio)
        .field("matmul_schedule_legacy_ms", matmul_legacy_ms)
        .field("matmul_schedule_interval_ms", matmul_interval_ms)
        .field("matmul_schedule_packed_ms", matmul_packed_ms)
        .end_object();

    // Self-checks: the representation is pure data layout, so all three
    // configurations must traverse identical trees; the event engine must
    // still halve wakeups; and packed trailing must strictly shrink the
    // trail on this hole-heavy workload.
    const auto parity = [&](const cp::SolveResult& a, const cp::SolveResult& b) {
        return a.stats.nodes == b.stats.nodes && a.stats.failures == b.stats.failures &&
               a.best == b.best;
    };
    if (!parity(legacy, interval) || !parity(interval, packed)) {
        std::cout << "ERROR: representation node parity violated\n";
        return false;
    }
    if (wakeup_ratio < 2.0) {
        std::cout << "ERROR: wakeup reduction below the 2x acceptance bound\n";
        return false;
    }
    if (packed.prop_stats.trail_bytes >= interval.prop_stats.trail_bytes) {
        std::cout << "ERROR: packed trail bytes did not shrink vs interval\n";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// Tracing-overhead guard: every obs event site in the solver's hot loops is
// one branch on a nullptr buffer when tracing is off. Guard that contract
// on the MATMUL optimality proof by interleaving untraced solves with
// fully instrumented ones (node-level trace + per-class profiling): the
// best untraced run must not exceed the median instrumented run by more
// than 2%, or the "disabled tracing is free" claim has regressed.

bool run_trace_overhead_guard(bench::JsonWriter& json, obs::MetricsRegistry& metrics) {
    const ir::Graph g = ir::merge_pipeline_ops(apps::build_matmul());
    constexpr int kReps = 5;
    std::array<double, kReps> disabled{};
    std::array<double, kReps> traced{};
    // Interleave the two configurations so machine noise (frequency
    // scaling, cache state) hits both distributions alike.
    for (int rep = 0; rep < kReps; ++rep) {
        {
            sched::ScheduleOptions opts;
            opts.timeout_ms = 60000;
            const Stopwatch watch;
            const sched::Schedule s = sched::schedule_kernel(g, opts);
            REVEC_EXPECTS(s.proven_optimal());
            disabled[static_cast<std::size_t>(rep)] = watch.elapsed_ms();
        }
        {
            obs::TraceSink sink(obs::TraceLevel::Node);
            sched::ScheduleOptions opts;
            opts.timeout_ms = 60000;
            opts.solver.trace = &sink;
            opts.solver.profile = true;
            const Stopwatch watch;
            const sched::Schedule s = sched::schedule_kernel(g, opts);
            REVEC_EXPECTS(s.proven_optimal());
            traced[static_cast<std::size_t>(rep)] = watch.elapsed_ms();
            if (rep == kReps - 1) {
                // Archive the instrumented run's counters (--metrics).
                s.stats.export_metrics(metrics, "solve.");
                s.prop_stats.export_metrics(metrics, "engine.");
                cp::export_prop_profile_metrics(s.prop_profile, metrics);
                metrics.set("solve.makespan", s.makespan);
                metrics.set("trace.events", static_cast<std::int64_t>(
                                                sink.main()->size()));
            }
        }
    }
    std::sort(disabled.begin(), disabled.end());
    std::sort(traced.begin(), traced.end());
    const double min_disabled = disabled[0];
    const double median_traced = traced[kReps / 2];

    Table t({"config", "min (ms)", "median (ms)", "max (ms)"});
    t.add_row({"tracing off", format_fixed(disabled[0], 2),
               format_fixed(disabled[kReps / 2], 2),
               format_fixed(disabled[kReps - 1], 2)});
    t.add_row({"node trace + profile", format_fixed(traced[0], 2),
               format_fixed(traced[kReps / 2], 2), format_fixed(traced[kReps - 1], 2)});
    t.print(std::cout);

    json.begin_object("trace_overhead")
        .field("min_disabled_ms", min_disabled)
        .field("median_traced_ms", median_traced)
        .end_object();
    metrics.gauge("overhead.min_disabled_ms", min_disabled);
    metrics.gauge("overhead.median_traced_ms", median_traced);

    if (min_disabled > 1.02 * median_traced) {
        std::cout << "ERROR: untraced solve exceeds the instrumented median by >2% — "
                     "the disabled-tracing path is no longer one branch per event\n";
        return false;
    }
    bench::note("disabled tracing within the 2% overhead bound (best untraced " +
                format_fixed(min_disabled, 2) + " ms vs instrumented median " +
                format_fixed(median_traced, 2) + " ms)");
    return true;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string json_path = bench::json_path_from_args(argc, argv);
    const std::string metrics_path = bench::metrics_path_from_args(argc, argv);

    bench::JsonWriter json;
    obs::MetricsRegistry metrics;
    json.begin_object();
    json.field("bench", "micro_cp_kernel");
    bool ok = run_engine_comparison(json);
    ok = run_trace_overhead_guard(json, metrics) && ok;
    json.end_object();
    bench::write_json(json_path, json);
    bench::write_metrics(metrics_path, metrics);
    if (!ok) return 1;

    // Strip --json/--metrics <path> before handing the argument vector to
    // google-benchmark, then run the registered microbenchmarks.
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--json" || std::string(argv[i]) == "--metrics") {
            ++i;  // skip the path operand too
            continue;
        }
        args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
