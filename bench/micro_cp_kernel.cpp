// google-benchmark microbenchmarks for the CP kernel primitives: domain
// operations, propagation throughput of the global constraints, and
// end-to-end kernel scheduling. These are engineering benchmarks (no paper
// counterpart); they guard the solver's performance envelope.
#include <benchmark/benchmark.h>

#include "revec/apps/matmul.hpp"
#include "revec/apps/qrd.hpp"
#include "revec/cp/cumulative.hpp"
#include "revec/cp/diff2.hpp"
#include "revec/cp/linear.hpp"
#include "revec/cp/search.hpp"
#include "revec/ir/passes.hpp"
#include "revec/pipeline/modulo.hpp"
#include "revec/sched/model.hpp"

namespace {

using namespace revec;

void BM_DomainRemoveRange(benchmark::State& state) {
    for (auto _ : state) {
        cp::Domain d(0, 1000);
        for (int i = 0; i < 100; ++i) d.remove_range(i * 7, i * 7 + 3);
        benchmark::DoNotOptimize(d.size());
    }
}
BENCHMARK(BM_DomainRemoveRange);

void BM_StorePushPop(benchmark::State& state) {
    cp::Store s;
    std::vector<cp::IntVar> xs;
    for (int i = 0; i < 64; ++i) xs.push_back(s.new_var(0, 1000));
    for (auto _ : state) {
        s.push_level();
        for (const cp::IntVar x : xs) s.set_min(x, 10);
        s.pop_level();
    }
}
BENCHMARK(BM_StorePushPop);

void BM_CumulativePropagation(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        cp::Store s;
        std::vector<cp::CumulTask> tasks;
        for (int i = 0; i < n; ++i) tasks.push_back({s.new_var(0, 2 * n), 3, 1});
        cp::post_cumulative(s, tasks, 4);
        state.ResumeTiming();
        benchmark::DoNotOptimize(s.propagate());
    }
}
BENCHMARK(BM_CumulativePropagation)->Arg(16)->Arg(64)->Arg(128);

void BM_Diff2Propagation(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        cp::Store s;
        std::vector<cp::Rect> rects;
        for (int i = 0; i < n; ++i) {
            rects.push_back({s.new_var(0, 100), s.new_var(0, 15), s.new_var(4, 8), 1});
        }
        cp::post_diff2(s, rects);
        state.ResumeTiming();
        benchmark::DoNotOptimize(s.propagate());
    }
}
BENCHMARK(BM_Diff2Propagation)->Arg(16)->Arg(48);

void BM_ScheduleMatmul(benchmark::State& state) {
    const ir::Graph g = apps::build_matmul();
    for (auto _ : state) {
        const sched::Schedule s = sched::schedule_kernel(g);
        benchmark::DoNotOptimize(s.makespan);
    }
}
BENCHMARK(BM_ScheduleMatmul)->Unit(benchmark::kMillisecond);

void BM_ScheduleQrd(benchmark::State& state) {
    const ir::Graph g = ir::merge_pipeline_ops(apps::build_qrd());
    for (auto _ : state) {
        sched::ScheduleOptions opts;
        opts.timeout_ms = 60000;
        const sched::Schedule s = sched::schedule_kernel(g, opts);
        benchmark::DoNotOptimize(s.makespan);
    }
}
BENCHMARK(BM_ScheduleQrd)->Unit(benchmark::kMillisecond);

void BM_ModuloMatmul(benchmark::State& state) {
    const ir::Graph g = apps::build_matmul();
    for (auto _ : state) {
        const pipeline::ModuloResult r = pipeline::modulo_schedule(g);
        benchmark::DoNotOptimize(r.actual_ii);
    }
}
BENCHMARK(BM_ModuloMatmul)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
