// Reproduces Table 3: modulo scheduling (software pipelining) of QRD, ARF
// and MATMUL, with reconfigurations either post-processed (left half) or
// optimized inside the model (right half).
// Paper: QRD 32+23=55 vs 46; ARF 16+16=32 vs 24; MATMUL 4 vs 4.
#include "common.hpp"

#include "revec/pipeline/modulo.hpp"

using namespace revec;

int main() {
    bench::banner("Table 3 — Pipelining with focus on limiting reconfigurations",
                  "Table 3: excl. vs incl. reconfigurations for QRD / ARF / MATMUL");

    const arch::ArchSpec spec = arch::ArchSpec::eit();

    struct Row {
        const char* name;
        ir::Graph graph;
    };
    Row rows[] = {{"QRD", bench::kernel_qrd()},
                  {"ARF", bench::kernel_arf()},
                  {"MATMUL", bench::kernel_matmul()}};

    Table t({"Application", "(|V|, |E|, |Cr.P|)", "initial II (cc)", "# rec.",
             "actual II (cc)", "throughput", "II (cc)", "throughput ",
             "optimization time (ms)"});
    for (const Row& row : rows) {
        pipeline::ModuloOptions excl;
        excl.spec = spec;
        excl.timeout_ms = 60000;
        const pipeline::ModuloResult r_excl = pipeline::modulo_schedule(row.graph, excl);

        pipeline::ModuloOptions incl;
        incl.spec = spec;
        incl.include_reconfigs = true;
        incl.timeout_ms = 60000;
        const pipeline::ModuloResult r_incl = pipeline::modulo_schedule(row.graph, incl);

        t.add_row({row.name, bench::graph_triple(spec, row.graph),
                   std::to_string(r_excl.initial_ii), std::to_string(r_excl.reconfigs),
                   std::to_string(r_excl.actual_ii), format_fixed(r_excl.throughput, 3),
                   std::to_string(r_incl.actual_ii), format_fixed(r_incl.throughput, 3),
                   format_fixed(r_incl.time_ms, 0)});
    }
    t.print(std::cout);

    std::cout << "\nPaper Table 3 for comparison "
                 "(left: excluding reconfigs; right: including):\n";
    Table p({"Application", "(|V|, |E|, |Cr.P|)", "initial II (cc)", "# rec.",
             "actual II (cc)", "throughput", "II (cc)", "throughput ",
             "optimization time (ms)"});
    p.add_row({"QRD", "(143, 194, 169)", "32", "23", "55", "0.018", "46", "0.022", "3055"});
    p.add_row({"ARF", "(88, 128, 56)", "16", "16", "32", "0.031", "24", "0.042", "80061"});
    p.add_row({"MATMUL", "(44, 68, 8)", "4", "1", "4", "0.250", "4", "0.250", "2135"});
    p.print(std::cout);

    bench::note("shape reproduced: the reconfiguration-aware model always matches or "
                "beats the post-processed actual II (QRD and ARF improve, MATMUL with "
                "its single configuration needs none). Our configuration-grouped "
                "branching plus the blocks>=configs bound lets the solver *prove* the "
                "optimum quickly, where the paper's (omitted) model ran for minutes.");
    return 0;
}
