// Shared helpers for the table/figure reproduction harnesses: consistent
// headers, paper-vs-measured framing, and kernel construction.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "revec/apps/arf.hpp"
#include "revec/apps/matmul.hpp"
#include "revec/apps/qrd.hpp"
#include "revec/ir/analysis.hpp"
#include "revec/ir/passes.hpp"
#include "revec/obs/metrics.hpp"
#include "revec/support/assert.hpp"
#include "revec/support/stopwatch.hpp"
#include "revec/support/strings.hpp"
#include "revec/support/table.hpp"

namespace revec::bench {

/// Median-of-3 wall-clock of `fn()` — single-shot timings swing with
/// machine noise (frequency scaling, cache state), and three runs with the
/// median is the cheapest damping that drops one outlier in each
/// direction. Shared by the timing-sensitive harnesses so they all report
/// the same statistic.
template <typename Fn>
double median_of_3_ms(Fn&& fn) {
    std::array<double, 3> ms{};
    for (double& m : ms) {
        const Stopwatch watch;
        fn();
        m = watch.elapsed_ms();
    }
    std::sort(ms.begin(), ms.end());
    return ms[1];
}

inline void banner(const std::string& title, const std::string& paper_context) {
    std::cout << "================================================================\n";
    std::cout << title << '\n';
    std::cout << "Paper reference: " << paper_context << '\n';
    std::cout << "================================================================\n";
}

inline void note(const std::string& text) { std::cout << "NOTE: " << text << '\n'; }

/// The three kernels, pipeline-merged as the paper schedules them.
inline ir::Graph kernel_matmul() { return ir::merge_pipeline_ops(apps::build_matmul()); }
inline ir::Graph kernel_qrd() { return ir::merge_pipeline_ops(apps::build_qrd()); }
inline ir::Graph kernel_arf() { return ir::merge_pipeline_ops(apps::build_arf()); }

inline std::string graph_triple(const arch::ArchSpec& spec, const ir::Graph& g) {
    const ir::GraphStats st = ir::graph_stats(spec, g);
    return "(" + std::to_string(st.num_nodes) + ", " + std::to_string(st.num_edges) + ", " +
           std::to_string(st.critical_path) + ")";
}

/// Minimal streaming JSON emitter for the machine-readable bench baselines
/// (the checked-in BENCH_*.json files). Only what the harnesses need:
/// nested objects/arrays of strings and numbers, pretty-printed.
class JsonWriter {
public:
    JsonWriter& begin_object() { return open('{', '}'); }
    JsonWriter& begin_object(const std::string& key) { return open('{', '}', &key); }
    JsonWriter& end_object() { return close(); }
    JsonWriter& begin_array(const std::string& key) { return open('[', ']', &key); }
    JsonWriter& begin_array() { return open('[', ']'); }
    JsonWriter& end_array() { return close(); }

    JsonWriter& field(const std::string& key, const std::string& v) {
        prefix(&key);
        os_ << '"' << escape(v) << '"';
        return *this;
    }
    JsonWriter& field(const std::string& key, const char* v) {
        return field(key, std::string(v));
    }
    JsonWriter& field(const std::string& key, std::int64_t v) {
        prefix(&key);
        os_ << v;
        return *this;
    }
    JsonWriter& field(const std::string& key, int v) {
        return field(key, static_cast<std::int64_t>(v));
    }
    JsonWriter& field(const std::string& key, double v) {
        prefix(&key);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.3f", v);
        os_ << buf;
        return *this;
    }
    JsonWriter& field(const std::string& key, bool v) {
        prefix(&key);
        os_ << (v ? "true" : "false");
        return *this;
    }

    std::string str() const {
        REVEC_EXPECTS(stack_.empty());  // all scopes closed
        return os_.str() + "\n";
    }

private:
    struct Scope {
        char closer;
        bool has_items = false;
    };

    static std::string escape(const std::string& s) {
        std::string out;
        for (const char c : s) {
            if (c == '"' || c == '\\') out.push_back('\\');
            if (c == '\n') {
                out += "\\n";
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    void prefix(const std::string* key) {
        if (!stack_.empty()) {
            if (stack_.back().has_items) os_ << ',';
            stack_.back().has_items = true;
            os_ << '\n' << std::string(2 * stack_.size(), ' ');
        }
        if (key != nullptr) os_ << '"' << escape(*key) << "\": ";
    }

    JsonWriter& open(char opener, char closer, const std::string* key = nullptr) {
        prefix(key);
        os_ << opener;
        stack_.push_back({closer});
        return *this;
    }

    JsonWriter& close() {
        REVEC_EXPECTS(!stack_.empty());
        const Scope s = stack_.back();
        stack_.pop_back();
        if (s.has_items) os_ << '\n' << std::string(2 * stack_.size(), ' ');
        os_ << s.closer;
        return *this;
    }

    std::ostringstream os_;
    std::vector<Scope> stack_;
};

/// Parse `--json <path>` from the command line; empty string = not given.
inline std::string json_path_from_args(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json") return argv[i + 1];
    }
    return {};
}

/// Write a JSON document to `path` (no-op on empty path).
inline void write_json(const std::string& path, const JsonWriter& json) {
    if (path.empty()) return;
    std::ofstream out(path);
    REVEC_EXPECTS(out.good());
    out << json.str();
    note("wrote JSON results to " + path);
}

/// Parse `--metrics <path>`; empty string = not given. The harnesses fill
/// an obs::MetricsRegistry alongside their tables so CI can archive the
/// same machine-readable counter shape `revecc --metrics=F` emits.
inline std::string metrics_path_from_args(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--metrics") return argv[i + 1];
    }
    return {};
}

/// Write a metrics registry to `path` (no-op on empty path).
inline void write_metrics(const std::string& path, const obs::MetricsRegistry& metrics) {
    if (path.empty()) return;
    metrics.save_json(path);
    note("wrote metrics to " + path);
}

}  // namespace revec::bench
