// Shared helpers for the table/figure reproduction harnesses: consistent
// headers, paper-vs-measured framing, and kernel construction.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "revec/apps/arf.hpp"
#include "revec/apps/matmul.hpp"
#include "revec/apps/qrd.hpp"
#include "revec/ir/analysis.hpp"
#include "revec/ir/passes.hpp"
#include "revec/support/strings.hpp"
#include "revec/support/table.hpp"

namespace revec::bench {

inline void banner(const std::string& title, const std::string& paper_context) {
    std::cout << "================================================================\n";
    std::cout << title << '\n';
    std::cout << "Paper reference: " << paper_context << '\n';
    std::cout << "================================================================\n";
}

inline void note(const std::string& text) { std::cout << "NOTE: " << text << '\n'; }

/// The three kernels, pipeline-merged as the paper schedules them.
inline ir::Graph kernel_matmul() { return ir::merge_pipeline_ops(apps::build_matmul()); }
inline ir::Graph kernel_qrd() { return ir::merge_pipeline_ops(apps::build_qrd()); }
inline ir::Graph kernel_arf() { return ir::merge_pipeline_ops(apps::build_arf()); }

inline std::string graph_triple(const arch::ArchSpec& spec, const ir::Graph& g) {
    const ir::GraphStats st = ir::graph_stats(spec, g);
    return "(" + std::to_string(st.num_nodes) + ", " + std::to_string(st.num_edges) + ", " +
           std::to_string(st.critical_path) + ")";
}

}  // namespace revec::bench
