// Regenerates Figs. 7-8: the memory layout abstraction (banks grouped into
// pages, lines across banks, linearly enumerated slots) and the three
// access examples — matrix A (bank conflict), matrix B (same page,
// different lines), matrix C (conflict-free).
#include "common.hpp"

#include "revec/arch/memory.hpp"

using namespace revec;

int main() {
    bench::banner("Figs. 7-8 — Memory layout abstraction and access examples",
                  "§3.4: 16 banks, 4 banks per page, slot/line/page views; "
                  "only matrix C is accessible in one cycle");

    // Fig. 7: layout facts for the EIT memory.
    const arch::MemoryGeometry eit;
    Table layout({"property", "value"});
    layout.add_row({"banks", std::to_string(eit.banks)});
    layout.add_row({"banks per page", std::to_string(eit.banks_per_page)});
    layout.add_row({"pages", std::to_string(eit.pages())});
    layout.add_row({"lines (slots per bank)", std::to_string(eit.lines)});
    layout.add_row({"total slots", std::to_string(eit.slots())});
    layout.add_row({"slot 0", "bank 0, line 0"});
    layout.add_row({"slot 1", "bank 1, line 0 (enumeration crosses banks first)"});
    layout.add_row({"slot 17", "bank " + std::to_string(eit.bank_of(17)) + ", line " +
                                   std::to_string(eit.line_of(17))});
    layout.print(std::cout);

    // Fig. 8 uses a small memory with 3 slots per bank.
    const arch::MemoryGeometry g{.banks = 16, .banks_per_page = 4, .lines = 3};
    struct Example {
        const char* name;
        std::vector<int> slots;
        const char* paper_verdict;
    };
    const Example examples[] = {
        // A: A1/A3 share bank 0, A2/A4 share bank 1.
        {"A", {g.slot_at(0, 0), g.slot_at(1, 0), g.slot_at(0, 1), g.slot_at(1, 1)},
         "NOT accessible (vectors share banks)"},
        // B: B3 and B4 in page 2 on different lines.
        {"B", {g.slot_at(4, 0), g.slot_at(5, 0), g.slot_at(8, 0), g.slot_at(9, 1)},
         "NOT accessible (same page, different lines)"},
        // C: page 3, all on line 2.
        {"C", {g.slot_at(12, 2), g.slot_at(13, 2), g.slot_at(14, 2), g.slot_at(15, 2)},
         "accessible in 1 cycle"},
    };

    Table t({"matrix", "slots (bank,line)", "checker verdict", "paper"});
    for (const Example& e : examples) {
        std::string where;
        for (const int s : e.slots) {
            if (!where.empty()) where += " ";
            where += "(" + std::to_string(g.bank_of(s)) + "," + std::to_string(g.line_of(s)) + ")";
        }
        const arch::AccessCheck check = arch::check_simultaneous_access(g, e.slots, {});
        t.add_row({e.name, where, check.ok ? "1-cycle OK" : check.reason, e.paper_verdict});
    }
    t.print(std::cout);

    // Headline capability: two matrices read + one written per cycle.
    std::vector<int> reads;
    for (int b = 0; b < 8; ++b) reads.push_back(g.slot_at(b, 0));
    std::vector<int> writes;
    for (int b = 8; b < 12; ++b) writes.push_back(g.slot_at(b, 0));
    const arch::AccessCheck cap = arch::check_simultaneous_access(g, reads, writes);
    std::cout << "\ntwo 4x4 matrices read + one written in a single cycle: "
              << (cap.ok ? "OK" : cap.reason) << '\n';
    return 0;
}
