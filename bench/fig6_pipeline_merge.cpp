// Regenerates Fig. 6: merging vector operations that follow the pre-, core-,
// post-processing pattern into one pipeline node (§3.3.1). Left example:
// pre-processing fused into a vector op; right example: a matrix operation
// fused with post-processing applied to its vector output.
#include "common.hpp"

#include "revec/dsl/eval.hpp"
#include "revec/dsl/ops.hpp"
#include "revec/dsl/program.hpp"
#include "revec/ir/dot.hpp"
#include "revec/sched/model.hpp"

using namespace revec;

namespace {

// Fig. 6 left: conj (pre) feeding an element-wise multiply (core).
ir::Graph left_example() {
    dsl::Program p("fig6_left");
    const auto a = p.in_vector({ir::Complex(1, 2), ir::Complex(0, -1), ir::Complex(3, 1),
                                ir::Complex(-2, 0)},
                               "a");
    const auto b = p.in_vector(2, 2, 2, 2, "b");
    const auto cb = dsl::pre_conj(a);
    const auto prod = dsl::v_mul(cb, b);
    p.mark_output(prod);
    return p.ir();
}

// Fig. 6 right: matrix op whose vector output is post-processed (sorting).
ir::Graph right_example() {
    dsl::Program p("fig6_right");
    const auto m = p.in_matrix({dsl::Vector::Elems{9, 0, 0, 0}, dsl::Vector::Elems{0, 1, 0, 0},
                                dsl::Vector::Elems{0, 0, 5, 0}, dsl::Vector::Elems{0, 0, 0, 3}},
                               "A");
    const auto sums = dsl::m_squsum(m);
    const auto sorted = dsl::post_sort(sums);
    p.mark_output(sorted);
    return p.ir();
}

void show(const char* name, const ir::Graph& g) {
    const arch::ArchSpec spec = arch::ArchSpec::eit();
    ir::PassStats st;
    const ir::Graph merged = ir::merge_pipeline_ops(g, &st);

    Table t({std::string(name), "before merge", "after merge"});
    t.add_row({"|V|", std::to_string(g.num_nodes()), std::to_string(merged.num_nodes())});
    t.add_row({"op nodes", std::to_string(g.op_nodes().size()),
               std::to_string(merged.op_nodes().size())});
    t.add_row({"|Cr.P| (cc)", std::to_string(ir::critical_path_length(spec, g)),
               std::to_string(ir::critical_path_length(spec, merged))});
    const sched::Schedule before = sched::schedule_kernel(g);
    const sched::Schedule after = sched::schedule_kernel(merged);
    t.add_row({"optimal makespan (cc)", std::to_string(before.makespan),
               std::to_string(after.makespan)});
    t.print(std::cout);

    // Semantics preserved.
    const auto vb = dsl::evaluate(g);
    const auto va = dsl::evaluate(merged);
    double err = 0;
    const auto ob = g.output_nodes();
    const auto oa = merged.output_nodes();
    for (std::size_t i = 0; i < ob.size(); ++i) {
        for (std::size_t k = 0; k < 4; ++k) {
            err = std::max(err, std::abs(vb[static_cast<std::size_t>(ob[i])].elems[k] -
                                         va[static_cast<std::size_t>(oa[i])].elems[k]));
        }
    }
    std::cout << "fused " << st.fused_pre << " pre-op(s), " << st.fused_post
              << " post-op(s); value error " << err << " (must be 0)\n\n";

    ir::save_dot(g, std::string(name) + "_before.dot");
    ir::save_dot(merged, std::string(name) + "_after.dot");
}

}  // namespace

int main() {
    bench::banner("Fig. 6 — Merging pipeline-pattern operations",
                  "§3.3.1: merging decreases node count and lets the scheduler treat "
                  "the 7-stage pipeline as a single unit");
    show("fig6_left", left_example());
    show("fig6_right", right_example());

    // On the full kernels: how much the pass shrinks each graph.
    const arch::ArchSpec spec = arch::ArchSpec::eit();
    Table t({"kernel", "|V| unmerged", "|V| merged"});
    struct K {
        const char* name;
        ir::Graph g;
    } kernels[] = {{"MATMUL", apps::build_matmul()},
                   {"QRD", apps::build_qrd()},
                   {"ARF", apps::build_arf()}};
    for (const K& k : kernels) {
        const ir::Graph merged = ir::merge_pipeline_ops(k.g);
        t.add_row({k.name, std::to_string(ir::graph_stats(spec, k.g).num_nodes),
                   std::to_string(ir::graph_stats(spec, merged).num_nodes)});
    }
    t.print(std::cout);
    return 0;
}
