// Reproduces Table 2: overlapped execution of 12 QRD iterations with focus
// on limiting reconfigurations. "Manual" mechanizes the architects' hand
// method (instruction-count-minimizing, type-grouped ordering, no memory
// allocation); "Automated" overlays the CP schedule's issue sequence.
// Paper: manual 460 cc / 18 reconfigs / 0.026 iter/cc vs automated
// 540 cc / 24 reconfigs / 0.022 iter/cc (~20% gap).
#include "common.hpp"

#include "revec/pipeline/manual.hpp"
#include "revec/pipeline/overlap.hpp"
#include "revec/sched/model.hpp"

using namespace revec;

int main() {
    bench::banner("Table 2 — Overlapping iterations, limiting reconfigurations",
                  "Table 2: 12 iterations of QRD; manual 460 cc/18 rec/0.026 thr, "
                  "automated 540 cc/24 rec/0.022 thr");

    const arch::ArchSpec spec = arch::ArchSpec::eit();
    const ir::Graph g = bench::kernel_qrd();
    const int iterations = 12;

    // Manual: phase-1 ordering by the instruction-count minimizer.
    const pipeline::IterationSequence manual = pipeline::pack_min_instructions(spec, g);
    const pipeline::OverlapResult manual_result =
        pipeline::overlapped_execution(spec, g, manual, iterations);

    // Automated: phase-1 ordering from the CP schedule (with memory
    // allocation, which the manual flow does not do).
    sched::ScheduleOptions opts;
    opts.spec = spec;
    opts.timeout_ms = 20000;
    const sched::Schedule s = sched::schedule_kernel(g, opts);
    if (!s.feasible()) {
        std::cout << "CP schedule infeasible within budget\n";
        return 1;
    }
    const pipeline::IterationSequence automated =
        pipeline::sequence_from_schedule(spec, g, s.start);
    const pipeline::OverlapResult auto_result =
        pipeline::overlapped_execution(spec, g, automated, iterations);

    Table t({"# iterations = 12", "Manual", "Automated"});
    t.add_row({"#instructions / iteration", std::to_string(manual.num_instructions()),
               std::to_string(automated.num_instructions())});
    t.add_row({"Schedule length (cc)", std::to_string(manual_result.schedule_length),
               std::to_string(auto_result.schedule_length)});
    t.add_row({"# reconfigurations", std::to_string(manual_result.reconfigurations),
               std::to_string(auto_result.reconfigurations)});
    t.add_row({"# reconfigs / # iter.", format_fixed(manual_result.reconfigs_per_iteration, 2),
               format_fixed(auto_result.reconfigs_per_iteration, 2)});
    t.add_row({"Throughput (iter./cc)", format_fixed(manual_result.throughput, 3),
               format_fixed(auto_result.throughput, 3)});
    t.print(std::cout);

    std::cout << "\nPaper Table 2 for comparison:\n";
    Table p({"# iterations = 12", "Manual", "Automated"});
    p.add_row({"Schedule length (cc)", "460", "540"});
    p.add_row({"# reconfigurations", "18", "24"});
    p.add_row({"# reconfigs / # iter.", "1.5", "2"});
    p.add_row({"Throughput (iter./cc)", "0.026", "0.022"});
    p.print(std::cout);

    const double gap = 100.0 *
                       (static_cast<double>(auto_result.schedule_length) -
                        manual_result.schedule_length) /
                       manual_result.schedule_length;
    std::cout << "\nManual-vs-automated length gap: " << format_fixed(gap, 1)
              << "% (paper: ~17%)\n";
    bench::note("shape reproduced: the hand method wins by a modest margin and needs "
                "fewer reconfigurations, but includes no memory allocation and, on real "
                "projects, many error-prone man-hours");
    return 0;
}
